#ifndef MQD_INDEX_REALTIME_INDEX_H_
#define MQD_INDEX_REALTIME_INDEX_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/postings.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "util/result.h"

namespace mqd {

/// Real-time segmented inverted index in the spirit of the systems the
/// paper cites as its indexing substrate (EarlyBird [5], TI [6],
/// LSII [25]): appends go to a small mutable active segment; when the
/// active segment reaches its document budget it is sealed, and sealed
/// segments of similar size are merged log-structured-merge style into
/// exponentially larger read-only segments. The number of segments
/// stays O(log n), keeping both ingestion cheap and query fan-out
/// small — LSII's core idea, single-threaded here.
///
/// Query results are identical to a monolithic InvertedIndex over the
/// same documents (asserted test-side).
class RealtimeIndex {
 public:
  explicit RealtimeIndex(size_t active_budget_docs = 1024,
                         TokenizerOptions tokenizer_options = {});

  /// Ingests a document (non-decreasing timestamps).
  Result<DocId> AddDocument(uint64_t external_id, double timestamp,
                            std::string_view text);

  size_t num_documents() const { return timestamps_.size(); }
  double timestamp(DocId doc) const { return timestamps_[doc]; }
  uint64_t external_id(DocId doc) const { return external_ids_[doc]; }

  /// Documents containing at least one of `terms`, ascending.
  std::vector<DocId> MatchAny(const std::vector<std::string>& terms) const;

  /// Diagnostics: current segment count (active excluded) and total
  /// merges performed.
  size_t num_sealed_segments() const { return sealed_.size(); }
  size_t num_merges() const { return merges_; }

 private:
  struct Segment {
    std::unordered_map<TermId, PostingList> postings;
    DocId begin = 0;
    DocId end = 0;  // exclusive
    size_t size() const { return end - begin; }
  };

  void SealActive();
  static Segment MergeSegments(const Segment& older, const Segment& newer);

  size_t active_budget_;
  Tokenizer tokenizer_;
  Vocabulary vocab_;
  /// Sealed segments, ascending by doc range; adjacent similar-size
  /// segments are merged after each seal.
  std::vector<Segment> sealed_;
  Segment active_;
  size_t merges_ = 0;
  std::vector<double> timestamps_;
  std::vector<uint64_t> external_ids_;
};

}  // namespace mqd

#endif  // MQD_INDEX_REALTIME_INDEX_H_
