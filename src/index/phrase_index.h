#ifndef MQD_INDEX_PHRASE_INDEX_H_
#define MQD_INDEX_PHRASE_INDEX_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "index/postings.h"
#include "util/result.h"

namespace mqd {

/// Positional inverted index: per (term, document) it keeps the token
/// positions, enabling exact phrase queries — "white house" must beat
/// bag-of-words matching for multi-word topics (several of the paper's
/// Table-1 topics are phrases: "super bowl", "tiger woods", "white
/// house").
class PhraseIndex {
 public:
  explicit PhraseIndex(TokenizerOptions tokenizer_options = {});

  /// Ingests a document (non-decreasing timestamps).
  Result<DocId> AddDocument(uint64_t external_id, double timestamp,
                            std::string_view text);

  size_t num_documents() const { return timestamps_.size(); }
  double timestamp(DocId doc) const { return timestamps_[doc]; }
  uint64_t external_id(DocId doc) const { return external_ids_[doc]; }

  /// Documents containing the exact token sequence of `phrase`
  /// (normalized by the tokenizer; stopwords are removed on both sides
  /// so "the white house" == "white house"). A single-token phrase is
  /// a plain term lookup.
  std::vector<DocId> PhraseSearch(std::string_view phrase) const;

  /// Documents containing the term (ascending).
  std::vector<DocId> TermSearch(std::string_view term) const;

  /// TF-IDF ranked retrieval: top-`k` documents by sum over query
  /// terms of tf(t, d) * log(1 + N / df(t)), descending score with
  /// recency tie-break. Term frequencies come from the stored
  /// positions. `k` = 0 means all matches.
  struct RankedHit {
    DocId doc;
    double score;
  };
  std::vector<RankedHit> RankedSearch(std::string_view query,
                                      size_t k = 10) const;

 private:
  struct Posting {
    DocId doc;
    std::vector<uint32_t> positions;  // ascending token offsets
  };

  const std::vector<Posting>* PostingsFor(const std::string& token) const;

  Tokenizer tokenizer_;
  Vocabulary vocab_;
  std::vector<std::vector<Posting>> postings_;  // per TermId
  std::vector<double> timestamps_;
  std::vector<uint64_t> external_ids_;
};

}  // namespace mqd

#endif  // MQD_INDEX_PHRASE_INDEX_H_
