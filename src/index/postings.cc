#include "index/postings.h"

#include "util/logging.h"

namespace mqd {

namespace {

void AppendVarint(std::vector<uint8_t>* out, uint32_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

uint32_t ReadVarint(const std::vector<uint8_t>& data, size_t* offset) {
  uint32_t value = 0;
  int shift = 0;
  while (true) {
    const uint8_t byte = data[*offset];
    ++*offset;
    value |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return value;
}

}  // namespace

void PostingList::Add(DocId doc) {
  if (count_ == 0) {
    AppendVarint(&data_, doc);
  } else {
    MQD_CHECK(doc > last_doc_)
        << "postings must be appended in increasing doc order";
    AppendVarint(&data_, doc - last_doc_);
  }
  last_doc_ = doc;
  ++count_;
}

PostingList::Iterator::Iterator(const PostingList* list) : list_(list) {
  if (list_->count_ > 0) {
    current_ = ReadVarint(list_->data_, &offset_);
    valid_ = true;
  }
}

void PostingList::Iterator::Next() {
  if (!valid_) return;
  if (offset_ >= list_->data_.size()) {
    valid_ = false;
    return;
  }
  current_ += ReadVarint(list_->data_, &offset_);
}

void PostingList::Iterator::SeekTo(DocId target) {
  while (valid_ && current_ < target) Next();
}

PostingList PostingList::FromRaw(std::vector<uint8_t> data, size_t count,
                                 DocId last_doc) {
  PostingList list;
  list.data_ = std::move(data);
  list.count_ = count;
  list.last_doc_ = last_doc;
  return list;
}

std::vector<DocId> PostingList::ToVector() const {
  std::vector<DocId> out;
  out.reserve(count_);
  for (Iterator it = NewIterator(); it.Valid(); it.Next()) {
    out.push_back(it.Doc());
  }
  return out;
}

}  // namespace mqd
