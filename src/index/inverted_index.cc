#include "index/inverted_index.h"

#include <algorithm>
#include <queue>

#include "util/string_util.h"

namespace mqd {

InvertedIndex::InvertedIndex(TokenizerOptions tokenizer_options)
    : tokenizer_(tokenizer_options) {}

Result<DocId> InvertedIndex::AddDocument(uint64_t external_id,
                                         double timestamp,
                                         std::string_view text) {
  if (!timestamps_.empty() && timestamp < timestamps_.back()) {
    return Status::InvalidArgument(StrFormat(
        "document timestamps must be non-decreasing (%.3f after %.3f)",
        timestamp, timestamps_.back()));
  }
  const DocId doc = static_cast<DocId>(timestamps_.size());
  timestamps_.push_back(timestamp);
  external_ids_.push_back(external_id);

  std::vector<std::string> tokens = tokenizer_.Tokenize(text);
  // Deduplicate within the document: one posting per (term, doc).
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  for (const std::string& token : tokens) {
    const TermId term = vocab_.Intern(token);
    if (term >= postings_.size()) postings_.resize(term + 1);
    postings_[term].Add(doc);
  }
  return doc;
}

const PostingList* InvertedIndex::Postings(std::string_view term) const {
  const std::vector<std::string> tokens =
      tokenizer_.Tokenize(std::string(term));
  if (tokens.size() != 1) return nullptr;
  const TermId id = vocab_.Find(tokens[0]);
  if (id == kInvalidTerm) return nullptr;
  return &postings_[id];
}

std::vector<DocId> InvertedIndex::MatchAny(
    const std::vector<std::string>& terms) const {
  // K-way merge of the posting iterators via a min-heap.
  std::vector<PostingList::Iterator> iters;
  for (const std::string& term : terms) {
    const PostingList* list = Postings(term);
    if (list != nullptr && !list->empty()) {
      iters.push_back(list->NewIterator());
    }
  }
  using HeapItem = std::pair<DocId, size_t>;  // (doc, iterator idx)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (size_t i = 0; i < iters.size(); ++i) {
    heap.emplace(iters[i].Doc(), i);
  }
  std::vector<DocId> out;
  while (!heap.empty()) {
    const auto [doc, idx] = heap.top();
    heap.pop();
    if (out.empty() || out.back() != doc) out.push_back(doc);
    iters[idx].Next();
    if (iters[idx].Valid()) heap.emplace(iters[idx].Doc(), idx);
  }
  return out;
}

std::vector<DocId> InvertedIndex::MatchAnyInRange(
    const std::vector<std::string>& terms, double t_begin,
    double t_end) const {
  // DocIds follow time order, so the range is an id interval found by
  // binary search over timestamps.
  const auto lo = std::lower_bound(timestamps_.begin(), timestamps_.end(),
                                   t_begin);
  const auto hi =
      std::upper_bound(timestamps_.begin(), timestamps_.end(), t_end);
  const DocId first = static_cast<DocId>(lo - timestamps_.begin());
  const DocId last = static_cast<DocId>(hi - timestamps_.begin());

  std::vector<DocId> out;
  for (const std::string& term : terms) {
    const PostingList* list = Postings(term);
    if (list == nullptr) continue;
    PostingList::Iterator it = list->NewIterator();
    it.SeekTo(first);
    for (; it.Valid() && it.Doc() < last; it.Next()) {
      out.push_back(it.Doc());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t InvertedIndex::postings_byte_size() const {
  size_t total = 0;
  for (const PostingList& list : postings_) total += list.byte_size();
  return total;
}

}  // namespace mqd
