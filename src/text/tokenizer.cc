#include "text/tokenizer.h"

#include <cctype>

#include "text/stopwords.h"
#include "util/string_util.h"

namespace mqd {

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (current.empty()) return;
    std::string token = std::move(current);
    current.clear();
    // Drop URLs.
    if (StartsWith(token, "http") || StartsWith(token, "www.")) return;
    // A bare '#'/'$' is noise.
    const bool tagged = token[0] == '#' || token[0] == '$';
    const size_t body_len = tagged ? token.size() - 1 : token.size();
    if (body_len < options_.min_token_length) return;
    if (options_.remove_stopwords &&
        IsStopword(tagged ? std::string_view(token).substr(1) : token)) {
      return;
    }
    tokens.push_back(std::move(token));
  };

  bool skip_chunk = false;  // inside a URL: ignore until whitespace
  for (size_t i = 0; i < text.size(); ++i) {
    const char raw = text[i];
    const unsigned char c = static_cast<unsigned char>(raw);
    if (skip_chunk) {
      if (std::isspace(c)) skip_chunk = false;
      continue;
    }
    // Entering a URL chunk ("http://...", "www.example.com"): drop it
    // wholesale rather than emitting its fragments.
    if (current == "http" || current == "https") {
      if (raw == ':') {
        current.clear();
        skip_chunk = true;
        continue;
      }
    } else if (current == "www" && raw == '.') {
      current.clear();
      skip_chunk = true;
      continue;
    }
    if (std::isalnum(c) || raw == '_') {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if ((raw == '#' || raw == '$') && current.empty() &&
               options_.keep_tag_prefixes) {
      current.push_back(raw);
    } else if (raw == '\'') {
      // Collapse contractions ("don't" -> "dont").
      continue;
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

}  // namespace mqd
