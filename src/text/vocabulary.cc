#include "text/vocabulary.h"

#include "util/logging.h"

namespace mqd {

TermId Vocabulary::Intern(std::string_view word) {
  auto it = ids_.find(std::string(word));
  if (it != ids_.end()) return it->second;
  const TermId id = static_cast<TermId>(words_.size());
  words_.emplace_back(word);
  ids_.emplace(words_.back(), id);
  return id;
}

TermId Vocabulary::Find(std::string_view word) const {
  auto it = ids_.find(std::string(word));
  return it == ids_.end() ? kInvalidTerm : it->second;
}

const std::string& Vocabulary::Word(TermId id) const {
  MQD_CHECK(id < words_.size()) << "term id out of range";
  return words_[id];
}

std::vector<TermId> Vocabulary::InternAll(
    const std::vector<std::string>& tokens) {
  std::vector<TermId> out;
  out.reserve(tokens.size());
  for (const std::string& token : tokens) out.push_back(Intern(token));
  return out;
}

}  // namespace mqd
