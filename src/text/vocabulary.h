#ifndef MQD_TEXT_VOCABULARY_H_
#define MQD_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mqd {

/// Dense term id.
using TermId = uint32_t;

inline constexpr TermId kInvalidTerm = static_cast<TermId>(-1);

/// String <-> dense TermId interning table shared by the inverted
/// index and the topic model. Unbounded (unlike LabelUniverse).
class Vocabulary {
 public:
  /// Interns `word`, returning its id (existing id when present).
  TermId Intern(std::string_view word);

  /// kInvalidTerm when absent.
  TermId Find(std::string_view word) const;

  const std::string& Word(TermId id) const;

  size_t size() const { return words_.size(); }

  /// Interns every token, in order.
  std::vector<TermId> InternAll(const std::vector<std::string>& tokens);

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, TermId> ids_;
};

}  // namespace mqd

#endif  // MQD_TEXT_VOCABULARY_H_
