#ifndef MQD_TEXT_TOKENIZER_H_
#define MQD_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace mqd {

/// Tokenization options for microblog text.
struct TokenizerOptions {
  /// Keep the leading '#' of hashtags / '$' of cashtags as part of the
  /// token ("#nasdaq", "$goog"), the way microblog search engines
  /// treat them as first-class query atoms.
  bool keep_tag_prefixes = true;
  /// Drop tokens shorter than this after normalization.
  size_t min_token_length = 2;
  /// Remove stopwords (see text/stopwords.h).
  bool remove_stopwords = true;
};

/// Splits text into lowercase word tokens. ASCII-oriented (our corpora
/// are synthetic English); URLs ("http..." prefixes) are dropped,
/// alphanumerics plus '_' stay, '#'/'$' prefixes are kept per the
/// options.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  std::vector<std::string> Tokenize(std::string_view text) const;

 private:
  TokenizerOptions options_;
};

}  // namespace mqd

#endif  // MQD_TEXT_TOKENIZER_H_
