#ifndef MQD_TEXT_STOPWORDS_H_
#define MQD_TEXT_STOPWORDS_H_

#include <string_view>

namespace mqd {

/// True when `word` (already lowercased) is an English stopword. The
/// built-in list is the usual ~120-word function-word set used by
/// search engines; topic modeling and indexing both drop these.
bool IsStopword(std::string_view word);

}  // namespace mqd

#endif  // MQD_TEXT_STOPWORDS_H_
