#ifndef MQD_PARALLEL_PARALLEL_SOLVER_H_
#define MQD_PARALLEL_PARALLEL_SOLVER_H_

#include <memory>

#include "core/solver.h"
#include "parallel/parallel_options.h"
#include "util/thread_pool.h"

namespace mqd {

/// Parallel-aware counterpart of CreateSolver: returns the
/// intra-instance-parallel implementation of `kind` running on `pool`
/// (borrowed, may be null) where one exists -- Scan, Scan+, GreedySC,
/// GreedySC(lazy; executed by the linear-argmax-equivalent parallel
/// engine, which picks the identical cover) -- and falls back to the
/// serial solver for the exact references (OPT, BnB). Every returned
/// solver obeys the determinism contract of ParallelOptions.
std::unique_ptr<Solver> CreateParallelSolver(SolverKind kind,
                                             ThreadPool* pool,
                                             const ParallelOptions& options);

}  // namespace mqd

#endif  // MQD_PARALLEL_PARALLEL_SOLVER_H_
