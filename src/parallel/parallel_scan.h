#ifndef MQD_PARALLEL_PARALLEL_SCAN_H_
#define MQD_PARALLEL_PARALLEL_SCAN_H_

#include "core/scan.h"
#include "core/solver.h"
#include "parallel/parallel_options.h"
#include "util/thread_pool.h"

namespace mqd {

/// Scan with the per-label sweeps fanned across a thread pool. The
/// sweeps of plain Scan are mutually independent (each touches only
/// LP(a) and its own output vector), so each label runs the serial
/// SweepLabel verbatim into a per-label buffer; buffers are merged in
/// label order and canonicalized. Output is bit-identical to
/// ScanSolver at every thread count.
class ParallelScanSolver final : public Solver {
 public:
  /// `pool` may be null (serial). The pool is borrowed, not owned.
  ParallelScanSolver(ThreadPool* pool, ParallelOptions options)
      : pool_(pool), options_(options) {}

  std::string_view name() const override { return "Scan(par)"; }
  Result<std::vector<PostId>> Solve(const Instance& inst,
                                    const CoverageModel& model) const override;

 private:
  ThreadPool* pool_;
  ParallelOptions options_;
};

/// Scan+ with the cross-label pruning step parallelized. The label
/// sweeps themselves stay in serial label order (each sweep reads the
/// covered bitmap the previous picks wrote -- that dependency is what
/// makes Scan+ prune), but the expensive part, marking every (post,
/// label) pair a pick covers, fans the pick's labels across the pool
/// with atomic bit-ORs. Set union is commutative, so the bitmap after
/// each pick -- and therefore every subsequent pick -- is bit-identical
/// to ScanPlusSolver.
class ParallelScanPlusSolver final : public Solver {
 public:
  ParallelScanPlusSolver(ThreadPool* pool, ParallelOptions options,
                         LabelOrder order = LabelOrder::kById)
      : pool_(pool), options_(options), order_(order) {}

  std::string_view name() const override { return "Scan+(par)"; }
  Result<std::vector<PostId>> Solve(const Instance& inst,
                                    const CoverageModel& model) const override;

 private:
  ThreadPool* pool_;
  ParallelOptions options_;
  LabelOrder order_;
};

}  // namespace mqd

#endif  // MQD_PARALLEL_PARALLEL_SCAN_H_
