#include "parallel/parallel_greedy.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/greedy_state.h"
#include "core/kernels.h"
#include "core/solve_scratch.h"
#include "obs/stack_metrics.h"

namespace mqd {

namespace {

struct ChunkBest {
  int64_t gain = 0;
  PostId post = kInvalidPost;
};

}  // namespace

Result<std::vector<PostId>> ParallelGreedySCSolver::Solve(
    const Instance& inst, const CoverageModel& model) const {
  const size_t n = inst.num_posts();
  if (pool_ == nullptr || pool_->num_workers() == 0 ||
      n < options_.min_posts_to_parallelize) {
    return GreedySCSolver(GreedyEngine::kLinearArgmax).Solve(inst, model);
  }

  // Chunking depends only on n, so per-chunk results land at fixed
  // indices no matter which thread computes them.
  const size_t threads = static_cast<size_t>(pool_->num_workers()) + 1;
  const size_t grain =
      std::max<size_t>(512, (n + threads * 4 - 1) / (threads * 4));
  const size_t num_chunks = (n + grain - 1) / grain;

  SolveScratch::Session session(SolveScratch::ThreadLocal());
  internal::GreedyState state(inst, model, session.arena(),
                              /*compute_gains=*/false);
  ParallelFor(pool_, n, grain, [&](size_t begin, size_t end) {
    for (size_t p = begin; p < end; ++p) {
      const PostId id = static_cast<PostId>(p);
      state.set_gain(id, state.InitialGain(id));
    }
  });

  const obs::SolverMetrics& metrics = obs::SolverMetricsFor(name());
  const kern::KernelTable& kt = kern::Active();
  std::vector<PostId> out;
  std::vector<ChunkBest> chunk_best(num_chunks);
  while (state.remaining() > 0) {
    ParallelFor(pool_, n, grain, [&](size_t begin, size_t end) {
      // Dense argmax kernel per chunk: first maximum if positive —
      // identical to the serial strict-> scan over [begin, end).
      ChunkBest best;
      const size_t at = kt.argmax_dense(state.gains_data() + begin,
                                        end - begin);
      if (at < end - begin) {
        best.gain = state.gain(static_cast<PostId>(begin + at));
        best.post = static_cast<PostId>(begin + at);
      }
      chunk_best[begin / grain] = best;
    });
    ChunkBest best;
    for (const ChunkBest& cb : chunk_best) {
      // Strict >, chunks merged in ascending order: on a gain tie the
      // earlier chunk -- i.e. the smaller PostId -- wins, exactly like
      // the serial left-to-right scan.
      if (cb.gain > best.gain) best = cb;
    }
    if (best.post == kInvalidPost) {
      return Status::Internal("GreedySC stalled with uncovered pairs");
    }
    out.push_back(best.post);
    state.Select(best.post);
  }
  metrics.gain_fastpath->Increment(state.fastpath_updates());
  metrics.gain_exact->Increment(state.exact_updates());
  internal::CanonicalizeSelection(&out);
  return out;
}

}  // namespace mqd
