#include "parallel/parallel_scan.h"

#include <atomic>
#include <functional>
#include <vector>

namespace mqd {

namespace {

bool ShouldParallelize(const Instance& inst, ThreadPool* pool,
                       const ParallelOptions& options) {
  return pool != nullptr && pool->num_workers() > 0 &&
         inst.num_posts() >= options.min_posts_to_parallelize &&
         inst.num_labels() > 1;
}

}  // namespace

Result<std::vector<PostId>> ParallelScanSolver::Solve(
    const Instance& inst, const CoverageModel& model) const {
  if (!ShouldParallelize(inst, pool_, options_)) {
    return ScanSolver().Solve(inst, model);
  }
  const size_t num_labels = static_cast<size_t>(inst.num_labels());
  std::vector<std::vector<PostId>> per_label(num_labels);
  ParallelFor(pool_, num_labels, /*grain=*/1,
              [&](size_t begin, size_t end) {
                for (size_t a = begin; a < end; ++a) {
                  internal::SweepLabel(inst, model, static_cast<LabelId>(a),
                                       /*covered=*/nullptr, &per_label[a]);
                }
              });
  std::vector<PostId> out;
  for (size_t a = 0; a < num_labels; ++a) {
    out.insert(out.end(), per_label[a].begin(), per_label[a].end());
  }
  internal::CanonicalizeSelection(&out);
  return out;
}

Result<std::vector<PostId>> ParallelScanPlusSolver::Solve(
    const Instance& inst, const CoverageModel& model) const {
  if (!ShouldParallelize(inst, pool_, options_)) {
    return ScanPlusSolver(order_).Solve(inst, model);
  }
  std::vector<PostId> out;
  std::vector<LabelMask> covered(inst.num_posts(), 0);

  // Parallel replacement for the serial marking loop: the pick's
  // labels fan out across the pool, each thread ORing its label's bit
  // into the covered ranges. Threads for different labels may hit the
  // same post's mask word, hence the atomic_ref; the resulting bitmap
  // does not depend on thread interleaving because fetch_or is
  // commutative, and the ParallelFor join orders all marks before the
  // sweep resumes reading.
  const std::function<void(PostId)> mark = [&](PostId picked) {
    const std::vector<LabelId> labels = MaskToLabels(inst.labels(picked));
    ParallelFor(pool_, labels.size(), /*grain=*/1,
                [&](size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) {
                    const LabelId b = labels[i];
                    const DimValue reach = model.Reach(inst, picked, b);
                    const DimValue vb = inst.value(picked);
                    for (PostId q :
                         inst.LabelPostsInRange(b, vb - reach, vb + reach)) {
                      std::atomic_ref<LabelMask>(covered[q])
                          .fetch_or(MaskOf(b), std::memory_order_relaxed);
                    }
                  }
                });
  };

  for (LabelId a : internal::OrderedLabels(inst, order_)) {
    internal::SweepLabel(inst, model, a, &covered, &out, &mark);
  }
  internal::CanonicalizeSelection(&out);
  return out;
}

}  // namespace mqd
