#ifndef MQD_PARALLEL_SWEEP_H_
#define MQD_PARALLEL_SWEEP_H_

#include <cstddef>
#include <functional>

#include "util/thread_pool.h"

namespace mqd {

/// Deterministic sharding of `n` independent work items into
/// fixed-size shards: shard s covers [s*grain, min(n, (s+1)*grain)).
/// Boundaries depend only on (n, grain) — never on the thread count —
/// the same contract ParallelFor gives its chunks, so per-shard
/// results a caller accumulates by shard index are identical at every
/// thread count. The multi-tenant engine sweeps its live clusters
/// through this with one delivery tally and one latency sample per
/// shard.
size_t NumSweepShards(size_t n, size_t grain);

/// Runs `body(shard, begin, end)` over every shard of [0, n). With a
/// null/zero-worker pool, a single shard, or `force_serial`, shards
/// run in ascending order on the caller; otherwise they are dispatched
/// through ParallelFor (caller participating, first exception
/// rethrown). Returns true when the parallel path was taken. Bodies
/// of distinct shards must not share mutable state.
///
/// `force_serial` exists for the fault-injection regime: injected
/// fault firing is a pure function of (seed, site, hit index), so an
/// armed injector needs probes issued in one deterministic order.
bool RunShardedSweep(
    ThreadPool* pool, size_t n, size_t grain, bool force_serial,
    const std::function<void(size_t shard, size_t begin, size_t end)>& body);

}  // namespace mqd

#endif  // MQD_PARALLEL_SWEEP_H_
