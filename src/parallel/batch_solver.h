#ifndef MQD_PARALLEL_BATCH_SOLVER_H_
#define MQD_PARALLEL_BATCH_SOLVER_H_

#include <memory>
#include <vector>

#include "core/coverage.h"
#include "core/solver.h"
#include "parallel/parallel_options.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mqd {

/// One (instance, lambda-model, algorithm) solve request. The
/// instance (and model/solver, when given) are borrowed and must
/// outlive the SolveAll call.
struct BatchJob {
  const Instance* instance = nullptr;
  SolverKind kind = SolverKind::kScanPlus;
  /// Uniform coverage threshold, used when `model` is null.
  double lambda = 0.0;
  /// Optional coverage-model override (e.g. a VariableLambda).
  const CoverageModel* model = nullptr;
  /// Optional solver override; takes precedence over `kind`. Lets
  /// callers batch custom Solver implementations (and lets tests
  /// inject throwing solvers to exercise error propagation).
  const Solver* solver = nullptr;
};

/// Outcome of one job. `cover` is meaningful iff `status.ok()`.
struct BatchJobResult {
  Status status;
  std::vector<PostId> cover;
  double elapsed_seconds = 0.0;
};

/// Fans a batch of MQDP jobs across a work-stealing pool and collects
/// the outcomes **in submission order**: results[i] always belongs to
/// jobs[i], no matter which thread solved it or when it finished.
/// Each job is additionally free to use intra-instance parallelism on
/// the same pool (per-label sweeps, gain argmax) for instances above
/// ParallelOptions::min_posts_to_parallelize; nested fork/join on one
/// pool is safe because waiting threads help execute chunks.
///
/// Failure isolation: a job that returns an error -- or throws; the
/// engine catches and converts exceptions into
/// StatusCode::kInternal -- fails only its own slot. Covers are
/// bit-identical to solving each job serially, at every thread count.
class BatchSolver {
 public:
  /// Self-owned pool with options.num_threads total threads (the
  /// calling thread counts as one; num_threads == 1 runs serial).
  explicit BatchSolver(ParallelOptions options = {});

  /// Borrows `pool` (may be null for serial); `options.num_threads`
  /// is ignored in favor of the pool's size.
  BatchSolver(ThreadPool* pool, ParallelOptions options);

  ~BatchSolver();

  BatchSolver(const BatchSolver&) = delete;
  BatchSolver& operator=(const BatchSolver&) = delete;

  /// Solves all jobs; results align index-for-index with `jobs`.
  std::vector<BatchJobResult> SolveAll(
      const std::vector<BatchJob>& jobs) const;

  /// The pool jobs run on (null when serial).
  ThreadPool* pool() const { return pool_; }

 private:
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
  ParallelOptions options_;
};

}  // namespace mqd

#endif  // MQD_PARALLEL_BATCH_SOLVER_H_
