#ifndef MQD_PARALLEL_PARALLEL_OPTIONS_H_
#define MQD_PARALLEL_PARALLEL_OPTIONS_H_

#include <cstddef>

namespace mqd {

/// Knobs of the parallel execution engine. The contract everywhere
/// these options appear: the parallel path returns **bit-identical**
/// covers to the serial solvers at every thread count -- parallelism
/// is a pure performance decision, never a semantic one -- so tuning
/// these can never change results, only wall-clock time.
struct ParallelOptions {
  /// Total threads participating in a solve/batch, counting the
  /// calling thread. 0 = all hardware threads; 1 = serial.
  int num_threads = 0;

  /// Intra-instance parallelism (per-label Scan sweeps, GreedySC's
  /// gain argmax) only engages for instances with at least this many
  /// posts; smaller instances run the serial code verbatim, since
  /// fork/join overhead dwarfs the work. Inter-instance (batch)
  /// parallelism is not gated.
  size_t min_posts_to_parallelize = 4096;
};

}  // namespace mqd

#endif  // MQD_PARALLEL_PARALLEL_OPTIONS_H_
