#ifndef MQD_PARALLEL_PARALLEL_GREEDY_H_
#define MQD_PARALLEL_PARALLEL_GREEDY_H_

#include "core/greedy_sc.h"
#include "core/solver.h"
#include "parallel/parallel_options.h"
#include "util/thread_pool.h"

namespace mqd {

/// GreedySC with its two embarrassingly parallel pieces fanned across
/// a thread pool: the initial gain table (independent per post) and
/// the per-round gain argmax (a chunked parallel reduction). The
/// submodular update after each pick stays serial -- it is the part
/// that actually mutates state.
///
/// Determinism: the serial linear argmax picks the smallest PostId
/// among the maximum-gain posts (strict `>` over ascending ids). The
/// reduction computes per-chunk (gain, post) maxima with the same
/// rule, then merges chunks in ascending chunk order with the same
/// rule, which selects the same post regardless of how chunks were
/// scheduled. Output is therefore bit-identical to
/// GreedySCSolver(kLinearArgmax) -- and to the lazy-heap engine, which
/// breaks ties identically -- at every thread count.
class ParallelGreedySCSolver final : public Solver {
 public:
  /// `pool` may be null (serial). The pool is borrowed, not owned.
  ParallelGreedySCSolver(ThreadPool* pool, ParallelOptions options)
      : pool_(pool), options_(options) {}

  std::string_view name() const override { return "GreedySC(par)"; }
  Result<std::vector<PostId>> Solve(const Instance& inst,
                                    const CoverageModel& model) const override;

 private:
  ThreadPool* pool_;
  ParallelOptions options_;
};

}  // namespace mqd

#endif  // MQD_PARALLEL_PARALLEL_GREEDY_H_
