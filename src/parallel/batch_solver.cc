#include "parallel/batch_solver.h"

#include <exception>
#include <string>

#include "obs/stack_metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_solver.h"
#include "util/timer.h"

namespace mqd {

BatchSolver::BatchSolver(ParallelOptions options) : options_(options) {
  const int total = ResolveNumThreads(options.num_threads);
  if (total > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(total - 1);
    pool_ = owned_pool_.get();
  }
}

BatchSolver::BatchSolver(ThreadPool* pool, ParallelOptions options)
    : pool_(pool), options_(options) {}

BatchSolver::~BatchSolver() = default;

std::vector<BatchJobResult> BatchSolver::SolveAll(
    const std::vector<BatchJob>& jobs) const {
  obs::TraceSpan span("batch:solve_all");
  const obs::BatchMetrics& metrics = obs::GetBatchMetrics();
  metrics.last_batch_jobs->Set(static_cast<double>(jobs.size()));
  std::vector<BatchJobResult> results(jobs.size());
  // Pessimistic initialization: a slot whose body never ran (its chunk
  // aborted before reaching it) must read as a typed error, never as
  // an OK empty cover -- "no answer" beats "silent partial answer".
  for (BatchJobResult& slot : results) {
    slot.status = Status::Internal("job was not executed");
  }
  // Grain 1: jobs are coarse units; the work-stealing pool balances
  // uneven instance sizes. Slot i of `results` is owned by whichever
  // thread claimed chunk i -- no cross-slot writes, so submission
  // order falls out of the indexing with no post-hoc sorting.
  // ParallelFor rethrows the first chunk exception after every chunk
  // finished; the per-job try/catch below makes that unreachable for
  // solver failures, but the conversion stays (belt and braces): any
  // escape becomes per-job statuses on the unexecuted slots instead of
  // an exception out of SolveAll.
  try {
  ParallelFor(pool_, jobs.size(), /*grain=*/1,
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  const BatchJob& job = jobs[i];
                  BatchJobResult& slot = results[i];
                  slot.status = Status::OK();
                  Stopwatch watch;
                  if (job.instance == nullptr) {
                    slot.status =
                        Status::InvalidArgument("job has a null instance");
                    metrics.jobs->Increment();
                    metrics.job_errors->Increment();
                    continue;
                  }
                  if (job.model == nullptr && job.lambda < 0.0) {
                    slot.status = Status::InvalidArgument(
                        "job lambda must be non-negative");
                    metrics.jobs->Increment();
                    metrics.job_errors->Increment();
                    continue;
                  }
                  try {
                    const UniformLambda uniform(
                        job.model != nullptr ? 0.0 : job.lambda);
                    const CoverageModel& model =
                        job.model != nullptr
                            ? *job.model
                            : static_cast<const CoverageModel&>(uniform);
                    Result<std::vector<PostId>> cover =
                        job.solver != nullptr
                            ? job.solver->Solve(*job.instance, model)
                            : CreateParallelSolver(job.kind, pool_, options_)
                                  ->Solve(*job.instance, model);
                    if (cover.ok()) {
                      slot.cover = std::move(cover).value();
                    } else {
                      slot.status = cover.status();
                    }
                  } catch (const std::exception& e) {
                    slot.status = Status::Internal(
                        std::string("solver threw: ") + e.what());
                  } catch (...) {
                    slot.status =
                        Status::Internal("solver threw a non-std exception");
                  }
                  slot.elapsed_seconds = watch.ElapsedSeconds();
                  metrics.jobs->Increment();
                  metrics.job_seconds->Observe(slot.elapsed_seconds);
                  if (slot.status.ok()) {
                    metrics.cover_size->Observe(
                        static_cast<double>(slot.cover.size()));
                  } else {
                    metrics.job_errors->Increment();
                  }
                }
              });
  } catch (const std::exception& e) {
    const Status failure =
        Status::Internal(std::string("batch execution failed: ") + e.what());
    for (BatchJobResult& slot : results) {
      if (slot.status.code() == StatusCode::kInternal &&
          slot.status.message() == "job was not executed") {
        slot.status = failure;
      }
    }
  }
  // Helper tasks killed by injected pool.task faults are captured at
  // pool level; the caller thread still ran every chunk, so the batch
  // is complete. Drain the pool-level error so it cannot leak into an
  // unrelated later TakeFirstError call (the per-slot statuses already
  // carry any real failures).
  if (pool_ != nullptr) (void)pool_->TakeFirstError();
  return results;
}

}  // namespace mqd
