#include "parallel/parallel_solver.h"

#include "parallel/parallel_greedy.h"
#include "parallel/parallel_scan.h"

namespace mqd {

std::unique_ptr<Solver> CreateParallelSolver(SolverKind kind,
                                             ThreadPool* pool,
                                             const ParallelOptions& options) {
  // Only the parallel branches wrap here; the CreateSolver fallbacks
  // come back already instrumented (WrapSolverWithMetrics is identity
  // on wrapped solvers, but double-wrapping would double-count).
  switch (kind) {
    case SolverKind::kScan:
      return WrapSolverWithMetrics(
          std::make_unique<ParallelScanSolver>(pool, options));
    case SolverKind::kScanPlus:
      return WrapSolverWithMetrics(
          std::make_unique<ParallelScanPlusSolver>(pool, options));
    case SolverKind::kGreedySC:
    case SolverKind::kGreedySCLazy:
      // Both serial engines produce the same cover (identical
      // tie-breaking); one parallel engine serves them both.
      return WrapSolverWithMetrics(
          std::make_unique<ParallelGreedySCSolver>(pool, options));
    case SolverKind::kOpt:
    case SolverKind::kBranchAndBound:
      return CreateSolver(kind);
  }
  return CreateSolver(kind);
}

}  // namespace mqd
