#include "parallel/sweep.h"

#include <algorithm>

#include "util/logging.h"

namespace mqd {

size_t NumSweepShards(size_t n, size_t grain) {
  MQD_DCHECK(grain > 0);
  return n == 0 ? 0 : (n + grain - 1) / grain;
}

bool RunShardedSweep(
    ThreadPool* pool, size_t n, size_t grain, bool force_serial,
    const std::function<void(size_t shard, size_t begin, size_t end)>&
        body) {
  const size_t shards = NumSweepShards(n, grain);
  if (shards == 0) return false;
  if (force_serial || pool == nullptr || pool->num_workers() == 0 ||
      shards == 1) {
    for (size_t s = 0; s < shards; ++s) {
      const size_t begin = s * grain;
      body(s, begin, std::min(n, begin + grain));
    }
    return false;
  }
  // ParallelFor's chunk boundaries are exactly the shard boundaries
  // (both are grain-multiples clipped to n), so begin / grain recovers
  // the shard index on whichever thread picked the chunk up.
  ParallelFor(pool, n, grain, [&body, grain](size_t begin, size_t end) {
    body(begin / grain, begin, end);
  });
  return true;
}

}  // namespace mqd
