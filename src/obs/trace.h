#ifndef MQD_OBS_TRACE_H_
#define MQD_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/timer.h"

namespace mqd::obs {

/// RAII latency recorder: observes the enclosed scope's wall-clock
/// duration (seconds) into `hist` on destruction. A null histogram
/// makes it a no-op, so call sites can instrument unconditionally.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* hist) : hist_(hist) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->Observe(watch_.ElapsedSeconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* hist_;
  Stopwatch watch_;
};

/// Seconds since the process first touched the tracing clock
/// (monotonic). The timebase of every TraceEvent.
double ProcessUptimeSeconds();

/// One finished TraceSpan.
struct TraceEvent {
  std::string name;
  /// Start offset on the ProcessUptimeSeconds clock.
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  /// Nesting depth of the span on its thread (0 = outermost).
  int depth = 0;
  /// Small sequential id of the recording thread.
  uint64_t thread_id = 0;
};

/// Process-global bounded span log. Disabled by default: an inactive
/// tracer costs each TraceSpan one relaxed atomic load and nothing
/// else. When enabled, finished spans are appended under a mutex until
/// `capacity` is reached; overflow increments `dropped` instead of
/// growing without bound.
class Tracer {
 public:
  static Tracer& Global();

  void Enable(size_t capacity = 1 << 16);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(TraceEvent event);

  /// Removes and returns every recorded span, oldest first.
  std::vector<TraceEvent> Drain();

  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  std::mutex mu_;
  std::vector<TraceEvent> events_;
  size_t capacity_ = 0;
};

/// RAII per-stage trace span. Construction snapshots the clock when
/// the global tracer is enabled; destruction records the finished
/// span. Spans nest naturally (depth is tracked per thread).
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_ = false;
  std::string name_;
  double start_ = 0.0;
};

}  // namespace mqd::obs

#endif  // MQD_OBS_TRACE_H_
