#include "obs/stack_metrics.h"

#include <map>
#include <mutex>
#include <string>

#include "util/arena.h"
#include "util/thread_pool.h"

namespace mqd::obs {

namespace {

/// Shared bucket specs. Latency buckets are deliberately coarse-lo /
/// wide-hi: the edge buckets saturate, so outliers are still counted.
LinearBuckets SolveSecondsBuckets() { return LinearBuckets(0.0, 1.0, 50); }
LinearBuckets CoverSizeBuckets() { return LinearBuckets(0.0, 4096.0, 64); }
LinearBuckets InstancePostsBuckets() {
  return LinearBuckets(0.0, 65536.0, 64);
}
LinearBuckets DelaySecondsBuckets() { return LinearBuckets(0.0, 120.0, 60); }
LinearBuckets ReplaySecondsBuckets() { return LinearBuckets(0.0, 2.0, 40); }
LinearBuckets DigestSecondsBuckets() { return LinearBuckets(0.0, 2.0, 40); }
LinearBuckets RenderSecondsBuckets() { return LinearBuckets(0.0, 0.5, 50); }
LinearBuckets FanoutBuckets() { return LinearBuckets(0.0, 64.0, 64); }
LinearBuckets TaskSecondsBuckets() { return LinearBuckets(0.0, 0.25, 50); }

/// Per-algorithm handle cache. The structs (and the cache itself) are
/// reachable from the static, so LeakSanitizer is content, and handles
/// stay valid through static teardown.
template <typename Metrics>
class LabeledFamily {
 public:
  using Factory = Metrics* (*)(const LabelSet& labels);

  explicit LabeledFamily(Factory factory) : factory_(factory) {}

  const Metrics& For(std::string_view algorithm) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(algorithm);
    if (it != cache_.end()) return *it->second;
    Metrics* metrics =
        factory_(LabelSet{{"algorithm", std::string(algorithm)}});
    cache_.emplace(std::string(algorithm), metrics);
    return *metrics;
  }

 private:
  Factory factory_;
  std::mutex mu_;
  std::map<std::string, Metrics*, std::less<>> cache_;
};

}  // namespace

const SolverMetrics& SolverMetricsFor(std::string_view algorithm) {
  static LabeledFamily<SolverMetrics>* const family =
      new LabeledFamily<SolverMetrics>(+[](const LabelSet& labels) {
        MetricsRegistry& reg = MetricsRegistry::Global();
        return new SolverMetrics{
            &reg.MustCounter("mqd_solver_solve_total", labels),
            &reg.MustCounter("mqd_solver_solve_errors_total", labels),
            &reg.MustHistogram("mqd_solver_solve_seconds",
                               SolveSecondsBuckets(), labels),
            &reg.MustHistogram("mqd_solver_cover_size", CoverSizeBuckets(),
                               labels),
            &reg.MustHistogram("mqd_solver_instance_posts",
                               InstancePostsBuckets(), labels),
            &reg.MustGauge("mqd_solver_last_lambda", labels),
            &reg.MustCounter("mqd_solver_gain_fastpath_total", labels),
            &reg.MustCounter("mqd_solver_gain_exact_total", labels),
        };
      });
  return family->For(algorithm);
}

const StreamMetrics& StreamMetricsFor(std::string_view algorithm) {
  static LabeledFamily<StreamMetrics>* const family =
      new LabeledFamily<StreamMetrics>(+[](const LabelSet& labels) {
        MetricsRegistry& reg = MetricsRegistry::Global();
        return new StreamMetrics{
            &reg.MustCounter("mqd_stream_replays_total", labels),
            &reg.MustCounter("mqd_stream_posts_total", labels),
            &reg.MustCounter("mqd_stream_emissions_total", labels),
            &reg.MustCounter("mqd_stream_tau_violations_total", labels),
            &reg.MustHistogram("mqd_stream_report_delay_seconds",
                               DelaySecondsBuckets(), labels),
            &reg.MustHistogram("mqd_stream_replay_seconds",
                               ReplaySecondsBuckets(), labels),
            &reg.MustCounter("mqd_stream_deadline_heap_ops_total", labels),
            &reg.MustCounter("mqd_stream_prune_fastpath_total", labels),
            &reg.MustCounter("mqd_stream_nonmonotone_dropped_total", labels),
        };
      });
  return family->For(algorithm);
}

const PipelineMetrics& GetPipelineMetrics() {
  static const PipelineMetrics* const metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return new PipelineMetrics{
        &reg.MustCounter("mqd_pipeline_posts_checked_total"),
        &reg.MustCounter("mqd_pipeline_posts_matched_total"),
        &reg.MustHistogram("mqd_pipeline_match_fanout", FanoutBuckets()),
        &reg.MustCounter("mqd_pipeline_duplicates_dropped_total"),
        &reg.MustHistogram("mqd_pipeline_digest_seconds",
                           DigestSecondsBuckets()),
        &reg.MustHistogram("mqd_pipeline_stream_digest_seconds",
                           DigestSecondsBuckets()),
        &reg.MustHistogram("mqd_pipeline_render_seconds",
                           RenderSecondsBuckets()),
        &reg.MustCounter("mqd_pipeline_online_pushes_total"),
        &reg.MustCounter("mqd_pipeline_online_emissions_total"),
    };
  }();
  return *metrics;
}

const BatchMetrics& GetBatchMetrics() {
  static const BatchMetrics* const metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return new BatchMetrics{
        &reg.MustCounter("mqd_batch_jobs_total"),
        &reg.MustCounter("mqd_batch_job_errors_total"),
        &reg.MustHistogram("mqd_batch_job_seconds", SolveSecondsBuckets()),
        &reg.MustHistogram("mqd_batch_cover_size", CoverSizeBuckets()),
        &reg.MustGauge("mqd_batch_last_batch_jobs"),
    };
  }();
  return *metrics;
}

const ThreadPoolMetrics& GetThreadPoolMetrics() {
  static const ThreadPoolMetrics* const metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return new ThreadPoolMetrics{
        &reg.MustCounter("mqd_threadpool_tasks_submitted_total"),
        &reg.MustCounter("mqd_threadpool_tasks_completed_total"),
        &reg.MustCounter("mqd_threadpool_steals_total"),
        &reg.MustGauge("mqd_threadpool_queue_depth"),
        &reg.MustHistogram("mqd_threadpool_task_seconds",
                           TaskSecondsBuckets()),
    };
  }();
  return *metrics;
}

const RobustMetrics& GetRobustMetrics() {
  static const RobustMetrics* const metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return new RobustMetrics{
        &reg.MustCounter("mqd_robust_deadline_expired_total"),
        &reg.MustCounter("mqd_robust_io_rejects_total"),
        &reg.MustCounter("mqd_robust_checkpoints_saved_total"),
        &reg.MustCounter("mqd_robust_checkpoints_restored_total"),
    };
  }();
  return *metrics;
}

const GapMetrics& GetGapMetrics() {
  static const GapMetrics* const metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return new GapMetrics{
        &reg.MustCounter("mqd_gap_certified_solves_total"),
        &reg.MustCounter("mqd_gap_proven_optimal_total"),
        &reg.MustCounter("mqd_gap_interrupted_total"),
        &reg.MustCounter("mqd_gap_certify_errors_total"),
        &reg.MustCounter("mqd_gap_bb_nodes_total"),
        &reg.MustCounter("mqd_gap_bb_pruned_total"),
        &reg.MustCounter("mqd_gap_bb_incumbent_updates_total"),
        // Gaps are small integers; the fine low buckets matter.
        &reg.MustHistogram("mqd_gap_certified_gap",
                           LinearBuckets(0.0, 64.0, 64)),
        &reg.MustHistogram("mqd_gap_certify_seconds", SolveSecondsBuckets()),
        &reg.MustGauge("mqd_gap_last_gap"),
        &reg.MustGauge("mqd_gap_last_lower_bound"),
    };
  }();
  return *metrics;
}

const TenantMetrics& GetTenantMetrics() {
  static const TenantMetrics* const metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return new TenantMetrics{
        &reg.MustGauge("mqd_tenant_active"),
        &reg.MustGauge("mqd_tenant_clusters"),
        &reg.MustCounter("mqd_tenant_arrivals_total"),
        &reg.MustCounter("mqd_tenant_fanout_deliveries_total"),
        &reg.MustCounter("mqd_tenant_shared_state_hits_total"),
        &reg.MustCounter("mqd_tenant_evictions_total"),
        &reg.MustCounter("mqd_tenant_restores_total"),
        &reg.MustCounter("mqd_tenant_quarantined_total"),
        &reg.MustCounter("mqd_tenant_parallel_sweeps_total"),
        &reg.MustCounter("mqd_tenant_parallel_shards_total"),
        &reg.MustCounter("mqd_tenant_near_identical_attaches_total"),
        &reg.MustCounter("mqd_tenant_rep_grows_total"),
        &reg.MustCounter("mqd_tenant_residual_corrections_total"),
        &reg.MustCounter("mqd_tenant_residual_filtered_fires_total"),
        // Per-shard sweep latencies are micro-scale; the fine low
        // buckets are where the distribution lives.
        &reg.MustHistogram("mqd_tenant_shard_seconds",
                           LinearBuckets(0.0, 0.02, 40)),
    };
  }();
  return *metrics;
}

const ServeLaneMetrics& ServeLaneMetricsFor(std::string_view lane) {
  static LabeledFamily<ServeLaneMetrics>* const family =
      new LabeledFamily<ServeLaneMetrics>(+[](const LabelSet& labels) {
        // LabeledFamily labels with "algorithm"; rebrand as "lane".
        LabelSet lane_labels;
        for (const auto& [key, value] : labels) {
          lane_labels.emplace_back(key == "algorithm" ? "lane" : key, value);
        }
        MetricsRegistry& reg = MetricsRegistry::Global();
        return new ServeLaneMetrics{
            &reg.MustCounter("mqd_serve_requests_total", lane_labels),
            &reg.MustCounter("mqd_serve_admitted_total", lane_labels),
            &reg.MustCounter("mqd_serve_shed_total", lane_labels),
            &reg.MustCounter("mqd_serve_completed_total", lane_labels),
            &reg.MustCounter("mqd_serve_errors_total", lane_labels),
            &reg.MustGauge("mqd_serve_queue_depth", lane_labels),
            // Serving latencies live well below a second when healthy;
            // the saturating top bucket still counts the overloaded tail.
            &reg.MustHistogram("mqd_serve_latency_seconds",
                               LinearBuckets(0.0, 0.5, 50), lane_labels),
        };
      });
  return family->For(lane);
}

namespace {

/// rung -> Counter cache for mqd_serve_pre_degraded_total{rung}.
struct PreDegradedCounter {
  Counter* counter;
};

}  // namespace

Counter& ServePreDegradedFor(std::string_view rung) {
  static LabeledFamily<PreDegradedCounter>* const family =
      new LabeledFamily<PreDegradedCounter>(+[](const LabelSet& labels) {
        LabelSet rung_labels;
        for (const auto& [key, value] : labels) {
          rung_labels.emplace_back(key == "algorithm" ? "rung" : key, value);
        }
        return new PreDegradedCounter{&MetricsRegistry::Global().MustCounter(
            "mqd_serve_pre_degraded_total", rung_labels)};
      });
  return *family->For(rung).counter;
}

const ServeMetrics& GetServeMetrics() {
  static const ServeMetrics* const metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return new ServeMetrics{
        &reg.MustCounter("mqd_serve_drains_total"),
        &reg.MustCounter("mqd_serve_drain_shed_total"),
        &reg.MustCounter("mqd_serve_tenant_rejects_total"),
        &reg.MustCounter("mqd_serve_fault_rejects_total"),
    };
  }();
  return *metrics;
}

namespace {

/// rung -> Counter cache for mqd_robust_degraded_total{rung}.
struct DegradedCounter {
  Counter* counter;
};

}  // namespace

Counter& DegradedTotalFor(std::string_view rung) {
  static LabeledFamily<DegradedCounter>* const family =
      new LabeledFamily<DegradedCounter>(+[](const LabelSet& labels) {
        // LabeledFamily labels with "algorithm"; rebrand as "rung".
        LabelSet rung_labels;
        for (const auto& [key, value] : labels) {
          rung_labels.emplace_back(key == "algorithm" ? "rung" : key, value);
        }
        return new DegradedCounter{&MetricsRegistry::Global().MustCounter(
            "mqd_robust_degraded_total", rung_labels)};
      });
  return *family->For(rung).counter;
}

namespace {

class RegistryThreadPoolObserver : public ThreadPoolObserver {
 public:
  explicit RegistryThreadPoolObserver(const ThreadPoolMetrics& metrics)
      : metrics_(metrics) {}

  void OnTaskSubmitted(size_t queue_depth) override {
    metrics_.tasks_submitted->Increment();
    metrics_.queue_depth->Set(static_cast<double>(queue_depth));
  }

  void OnTaskStolen() override { metrics_.steals->Increment(); }

  void OnTaskDone(size_t queue_depth, double seconds) override {
    metrics_.tasks_completed->Increment();
    metrics_.queue_depth->Set(static_cast<double>(queue_depth));
    metrics_.task_seconds->Observe(seconds);
  }

 private:
  const ThreadPoolMetrics& metrics_;
};

}  // namespace

void InstallThreadPoolMetrics() {
  static std::once_flag once;
  std::call_once(once, [] {
    // Reachable via the observer global; intentionally never freed.
    SetThreadPoolObserver(
        new RegistryThreadPoolObserver(GetThreadPoolMetrics()));
  });
}

const ArenaMetrics& GetArenaMetrics() {
  static const ArenaMetrics* const metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return new ArenaMetrics{
        &reg.MustGauge("mqd_arena_bytes_peak"),
        &reg.MustCounter("mqd_arena_resets_total"),
        &reg.MustCounter("mqd_arena_block_allocs_total"),
    };
  }();
  return *metrics;
}

namespace {

class RegistryArenaObserver : public ArenaObserver {
 public:
  explicit RegistryArenaObserver(const ArenaMetrics& metrics)
      : metrics_(metrics) {}

  void OnReset(size_t bytes_peak) override {
    metrics_.resets->Increment();
    // Max fold, not last-write: with per-thread scratch arenas the
    // interesting number is the biggest solve footprint anywhere.
    if (static_cast<double>(bytes_peak) > metrics_.bytes_peak->Value()) {
      metrics_.bytes_peak->Set(static_cast<double>(bytes_peak));
    }
  }

  void OnBlockAlloc(size_t) override {
    metrics_.block_allocs->Increment();
  }

 private:
  const ArenaMetrics& metrics_;
};

}  // namespace

void InstallArenaMetrics() {
  static std::once_flag once;
  std::call_once(once, [] {
    // Reachable via the observer global; intentionally never freed.
    SetArenaObserver(new RegistryArenaObserver(GetArenaMetrics()));
  });
}

}  // namespace mqd::obs
