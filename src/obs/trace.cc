#include "obs/trace.h"

#include <algorithm>
#include <utility>

namespace mqd::obs {

namespace {

/// Per-thread trace state: a small sequential id (stable across the
/// thread's lifetime) and the current span nesting depth.
struct ThreadTraceState {
  uint64_t id;
  int depth = 0;
};

ThreadTraceState& LocalTraceState() {
  static std::atomic<uint64_t> next_id{0};
  thread_local ThreadTraceState state{
      next_id.fetch_add(1, std::memory_order_relaxed)};
  return state;
}

Stopwatch& ProcessClock() {
  // Leaked on purpose (reachable from this static): spans recorded
  // during static teardown must still find a live clock.
  static Stopwatch* const clock = new Stopwatch();
  return *clock;
}

}  // namespace

double ProcessUptimeSeconds() { return ProcessClock().ElapsedSeconds(); }

Tracer& Tracer::Global() {
  static Tracer* const global = new Tracer();
  return *global;
}

void Tracer::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  events_.clear();
  events_.reserve(std::min<size_t>(capacity, 1024));
  dropped_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Record(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.swap(events_);
  return out;
}

TraceSpan::TraceSpan(std::string_view name) {
  if (!Tracer::Global().enabled()) return;
  active_ = true;
  name_ = std::string(name);
  start_ = ProcessUptimeSeconds();
  ++LocalTraceState().depth;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  ThreadTraceState& state = LocalTraceState();
  --state.depth;
  TraceEvent event;
  event.name = std::move(name_);
  event.start_seconds = start_;
  event.duration_seconds = ProcessUptimeSeconds() - start_;
  event.depth = state.depth;
  event.thread_id = state.id;
  Tracer::Global().Record(std::move(event));
}

}  // namespace mqd::obs
