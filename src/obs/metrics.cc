#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <limits>

#include "util/logging.h"

namespace mqd::obs {

namespace {

void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  };
  const auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(name.front())) return false;
  return std::all_of(name.begin() + 1, name.end(), tail);
}

/// Canonical series key: name plus the sorted label pairs, e.g.
/// `mqd_solver_solve_total{algorithm="Scan"}`.
std::string SeriesKey(std::string_view name, const LabelSet& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  key += '{';
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ',';
    key += labels[i].first;
    key += "=\"";
    key += labels[i].second;
    key += '"';
  }
  key += '}';
  return key;
}

}  // namespace

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot % kShards;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::Add(double delta) { AtomicAdd(&value_, delta); }

LatencyHistogram::LatencyHistogram(const LinearBuckets& spec)
    : spec_(spec),
      bucket_counts_(new std::atomic<uint64_t>[spec.num_buckets()]),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  for (size_t b = 0; b < spec_.num_buckets(); ++b) {
    bucket_counts_[b].store(0, std::memory_order_relaxed);
  }
}

void LatencyHistogram::Observe(double value) {
  bucket_counts_[spec_.BucketOf(value)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

double LatencyHistogram::Mean() const {
  const uint64_t n = TotalCount();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double LatencyHistogram::Min() const {
  return TotalCount() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double LatencyHistogram::Max() const {
  return TotalCount() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double LatencyHistogram::Quantile(double q) const {
  MQD_CHECK(q >= 0.0 && q <= 1.0);
  const uint64_t n = TotalCount();
  if (n == 0) return 0.0;
  const double target = q * static_cast<double>(n);
  uint64_t seen = 0;
  for (size_t b = 0; b < spec_.num_buckets(); ++b) {
    seen += BucketCount(b);
    if (static_cast<double>(seen) >= target) return spec_.midpoint(b);
  }
  return spec_.hi();
}

void LatencyHistogram::Reset() {
  for (size_t b = 0; b < spec_.num_buckets(); ++b) {
    bucket_counts_[b].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::string_view MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

const MetricSample* MetricsSnapshot::Find(std::string_view name,
                                          const LabelSet& labels) const {
  for (const MetricSample& sample : samples) {
    if (sample.name != name) continue;
    if (!labels.empty() && sample.labels != labels) continue;
    return &sample;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose (reachable from this static, so LeakSanitizer is
  // content): instrumented destructors running during static teardown
  // must still find a live registry.
  static MetricsRegistry* const global = new MetricsRegistry();
  return *global;
}

Result<MetricsRegistry::Entry*> MetricsRegistry::GetOrCreate(
    std::string_view name, LabelSet labels, MetricType type,
    const LinearBuckets* buckets) {
  if (!IsValidMetricName(name)) {
    return Status::InvalidArgument("invalid metric name '" +
                                   std::string(name) + "'");
  }
  std::sort(labels.begin(), labels.end());
  for (size_t i = 0; i + 1 < labels.size(); ++i) {
    if (labels[i].first == labels[i + 1].first) {
      return Status::InvalidArgument("duplicate label key '" +
                                     labels[i].first + "' on metric '" +
                                     std::string(name) + "'");
    }
  }
  std::string key = SeriesKey(name, labels);

  std::lock_guard<std::mutex> lock(mu_);
  if (auto nt = name_types_.find(name);
      nt != name_types_.end() && nt->second != type) {
    return Status::InvalidArgument(
        "metric '" + std::string(name) + "' already registered as " +
        std::string(MetricTypeName(nt->second)) + ", cannot re-register as " +
        std::string(MetricTypeName(type)));
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    Entry& entry = it->second;
    if (type == MetricType::kHistogram &&
        !(entry.histogram->buckets() == *buckets)) {
      return Status::InvalidArgument(
          "histogram '" + key + "' already registered with different "
          "bucket boundaries");
    }
    return &entry;
  }

  Entry entry;
  entry.name = std::string(name);
  entry.labels = std::move(labels);
  entry.type = type;
  switch (type) {
    case MetricType::kCounter:
      entry.counter.reset(new Counter());
      break;
    case MetricType::kGauge:
      entry.gauge.reset(new Gauge());
      break;
    case MetricType::kHistogram:
      entry.histogram.reset(new LatencyHistogram(*buckets));
      break;
  }
  name_types_.emplace(entry.name, type);
  auto [pos, inserted] = entries_.emplace(std::move(key), std::move(entry));
  MQD_CHECK(inserted);
  return &pos->second;
}

Result<Counter*> MetricsRegistry::TryCounter(std::string_view name,
                                             LabelSet labels) {
  Entry* entry = nullptr;
  MQD_ASSIGN_OR_RETURN(
      entry, GetOrCreate(name, std::move(labels), MetricType::kCounter,
                         nullptr));
  return entry->counter.get();
}

Result<Gauge*> MetricsRegistry::TryGauge(std::string_view name,
                                         LabelSet labels) {
  Entry* entry = nullptr;
  MQD_ASSIGN_OR_RETURN(entry, GetOrCreate(name, std::move(labels),
                                          MetricType::kGauge, nullptr));
  return entry->gauge.get();
}

Result<LatencyHistogram*> MetricsRegistry::TryHistogram(
    std::string_view name, const LinearBuckets& buckets, LabelSet labels) {
  Entry* entry = nullptr;
  MQD_ASSIGN_OR_RETURN(entry, GetOrCreate(name, std::move(labels),
                                          MetricType::kHistogram, &buckets));
  return entry->histogram.get();
}

Counter& MetricsRegistry::MustCounter(std::string_view name,
                                      LabelSet labels) {
  auto counter = TryCounter(name, std::move(labels));
  MQD_CHECK(counter.ok()) << counter.status();
  return **counter;
}

Gauge& MetricsRegistry::MustGauge(std::string_view name, LabelSet labels) {
  auto gauge = TryGauge(name, std::move(labels));
  MQD_CHECK(gauge.ok()) << gauge.status();
  return **gauge;
}

LatencyHistogram& MetricsRegistry::MustHistogram(std::string_view name,
                                                 const LinearBuckets& buckets,
                                                 LabelSet labels) {
  auto histogram = TryHistogram(name, buckets, std::move(labels));
  MQD_CHECK(histogram.ok()) << histogram.status();
  return **histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.samples.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSample sample;
    sample.name = entry.name;
    sample.labels = entry.labels;
    sample.type = entry.type;
    switch (entry.type) {
      case MetricType::kCounter:
        sample.value = static_cast<double>(entry.counter->Value());
        break;
      case MetricType::kGauge:
        sample.value = entry.gauge->Value();
        break;
      case MetricType::kHistogram: {
        const LatencyHistogram& h = *entry.histogram;
        sample.count = h.TotalCount();
        sample.sum = h.Sum();
        sample.min = h.Min();
        sample.max = h.Max();
        sample.bucket_lo = h.buckets().lo();
        sample.bucket_hi = h.buckets().hi();
        sample.bucket_counts.resize(h.buckets().num_buckets());
        for (size_t b = 0; b < sample.bucket_counts.size(); ++b) {
          sample.bucket_counts[b] = h.BucketCount(b);
        }
        break;
      }
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    switch (entry.type) {
      case MetricType::kCounter:
        entry.counter->Reset();
        break;
      case MetricType::kGauge:
        entry.gauge->Reset();
        break;
      case MetricType::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace mqd::obs
