#ifndef MQD_OBS_EXPORTER_H_
#define MQD_OBS_EXPORTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/result.h"

namespace mqd::obs {

/// Renders a snapshot as a JSON document:
///
///   {"metrics": [
///     {"name": "...", "type": "counter", "labels": {...}, "value": 3},
///     {"name": "...", "type": "histogram", "labels": {}, "count": 2,
///      "sum": 0.5, "min": ..., "max": ..., "mean": ...,
///      "buckets": {"lo": 0, "hi": 1, "counts": [...]}},
///     ...
///   ]}
///
/// One sample per line, sorted by (name, labels): stable output for
/// golden tests and trivially diffable between runs.
std::string ToJson(const MetricsSnapshot& snapshot);

/// Renders a snapshot in the Prometheus text exposition format
/// (`# TYPE` headers, `_bucket{le=...}` cumulative buckets, `_sum`,
/// `_count`).
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// Writes ToJson(snapshot) to `path` ("-" = stdout). The file ends
/// with a trailing newline.
Status WriteJsonFile(const MetricsSnapshot& snapshot, std::string_view path);

/// One line per span ("[tid] <indent>name start+duration"), oldest
/// first, for the CLI's --trace output.
std::string TraceEventsToText(const std::vector<TraceEvent>& events);

}  // namespace mqd::obs

#endif  // MQD_OBS_EXPORTER_H_
