#ifndef MQD_OBS_STACK_METRICS_H_
#define MQD_OBS_STACK_METRICS_H_

#include <string_view>

#include "obs/metrics.h"

namespace mqd::obs {

/// Pre-registered handles for the built-in instrumentation of libmqd.
/// Each accessor registers its metrics in MetricsRegistry::Global() on
/// first use and caches the handles, so instrumented hot paths never
/// touch the registry lock.
///
/// Naming conventions (see DESIGN.md):
///   mqd_<subsystem>_<what>[_total|_seconds]
/// Counters end in `_total`, latency histograms in `_seconds`;
/// per-algorithm families carry an `algorithm` label.

/// Per-solver-algorithm family (label algorithm="Scan", "Scan+(par)",
/// ...). Recorded by the InstrumentedSolver decorator in core/solver.
struct SolverMetrics {
  Counter* solves;               // mqd_solver_solve_total
  Counter* errors;               // mqd_solver_solve_errors_total
  LatencyHistogram* solve_seconds;    // mqd_solver_solve_seconds
  LatencyHistogram* cover_size;       // mqd_solver_cover_size
  LatencyHistogram* instance_posts;   // mqd_solver_instance_posts
  Gauge* last_lambda;            // mqd_solver_last_lambda
  // Covered pairs whose gain decrements took GreedyState's O(1)
  // range-add fast path vs the per-candidate exact scan; lets the obs
  // layer attribute GreedySC speedups (see DESIGN.md §10).
  Counter* gain_fastpath;        // mqd_solver_gain_fastpath_total
  Counter* gain_exact;           // mqd_solver_gain_exact_total
};

const SolverMetrics& SolverMetricsFor(std::string_view algorithm);

/// Per-stream-algorithm family (label algorithm="StreamScan", ...).
/// Recorded by stream/replay during RunStream.
struct StreamMetrics {
  Counter* replays;              // mqd_stream_replays_total
  Counter* posts;                // mqd_stream_posts_total
  Counter* emissions;            // mqd_stream_emissions_total
  Counter* tau_violations;       // mqd_stream_tau_violations_total
  LatencyHistogram* report_delay_seconds;  // mqd_stream_report_delay_seconds
  LatencyHistogram* replay_seconds;        // mqd_stream_replay_seconds
  // Hot-path attribution for the streaming overhaul (DESIGN.md §11):
  // deadline-index heap operations (pushes + lazily discarded stale
  // pops) and prunes that took a binary-search range erase instead of
  // a linear scan. Processors tally locally and flush on Finish.
  Counter* deadline_heap_ops;    // mqd_stream_deadline_heap_ops_total
  Counter* prune_fastpath;       // mqd_stream_prune_fastpath_total
  // Arrivals whose timestamp ran backwards (or was NaN) during replay;
  // such posts are skipped instead of being emitted past-deadline.
  Counter* nonmonotone_dropped;  // mqd_stream_nonmonotone_dropped_total
};

const StreamMetrics& StreamMetricsFor(std::string_view algorithm);

/// Pipeline-wide metrics (matcher, diversifier, digest, online feed).
struct PipelineMetrics {
  Counter* posts_checked;        // mqd_pipeline_posts_checked_total
  Counter* posts_matched;        // mqd_pipeline_posts_matched_total
  LatencyHistogram* match_fanout;     // mqd_pipeline_match_fanout
  Counter* duplicates_dropped;   // mqd_pipeline_duplicates_dropped_total
  LatencyHistogram* digest_seconds;   // mqd_pipeline_digest_seconds
  LatencyHistogram* stream_digest_seconds;  // mqd_pipeline_stream_digest_...
  LatencyHistogram* render_seconds;   // mqd_pipeline_render_seconds
  Counter* online_pushes;        // mqd_pipeline_online_pushes_total
  Counter* online_emissions;     // mqd_pipeline_online_emissions_total
};

const PipelineMetrics& GetPipelineMetrics();

/// Batch-solver metrics (parallel/batch_solver).
struct BatchMetrics {
  Counter* jobs;                 // mqd_batch_jobs_total
  Counter* job_errors;           // mqd_batch_job_errors_total
  LatencyHistogram* job_seconds;      // mqd_batch_job_seconds
  LatencyHistogram* cover_size;       // mqd_batch_cover_size
  Gauge* last_batch_jobs;        // mqd_batch_last_batch_jobs
};

const BatchMetrics& GetBatchMetrics();

/// Thread-pool metrics, fed through the ThreadPoolObserver hook of
/// util/thread_pool (the util layer cannot depend on obs, so the pool
/// publishes through that interface instead of using these directly).
struct ThreadPoolMetrics {
  Counter* tasks_submitted;      // mqd_threadpool_tasks_submitted_total
  Counter* tasks_completed;      // mqd_threadpool_tasks_completed_total
  Counter* steals;               // mqd_threadpool_steals_total
  Gauge* queue_depth;            // mqd_threadpool_queue_depth
  LatencyHistogram* task_seconds;     // mqd_threadpool_task_seconds
};

const ThreadPoolMetrics& GetThreadPoolMetrics();

/// Robustness metrics (core/degrade ladder, hardened ingestion, stream
/// checkpointing). The `DegradedTotalFor` family is labeled with the
/// ladder rung that produced the answer ("GreedySC", "Scan+", "Scan",
/// "trivial"); only non-first-choice rungs count as degraded.
struct RobustMetrics {
  Counter* deadline_expired;     // mqd_robust_deadline_expired_total
  Counter* io_rejects;           // mqd_robust_io_rejects_total
  Counter* checkpoints_saved;    // mqd_robust_checkpoints_saved_total
  Counter* checkpoints_restored; // mqd_robust_checkpoints_restored_total
};

const RobustMetrics& GetRobustMetrics();

/// mqd_robust_degraded_total{rung}: answers produced by a fallback
/// rung of the degradation ladder.
Counter& DegradedTotalFor(std::string_view rung);

/// Optimality-gap engine metrics (core/bounds + core/branch_bound).
/// Recorded by BranchAndBoundSolver::SolveCertified, so every
/// quality-certified answer — direct, CLI --certify-gap, or the
/// certified degrade rung — shows up here.
struct GapMetrics {
  Counter* certified_solves;   // mqd_gap_certified_solves_total
  Counter* proven_optimal;     // mqd_gap_proven_optimal_total
  Counter* interrupted;        // mqd_gap_interrupted_total
  Counter* certify_errors;     // mqd_gap_certify_errors_total
  Counter* nodes;              // mqd_gap_bb_nodes_total
  Counter* pruned;             // mqd_gap_bb_pruned_total
  Counter* incumbent_updates;  // mqd_gap_bb_incumbent_updates_total
  LatencyHistogram* gap;       // mqd_gap_certified_gap
  LatencyHistogram* certify_seconds;  // mqd_gap_certify_seconds
  Gauge* last_gap;             // mqd_gap_last_gap
  Gauge* last_lower_bound;     // mqd_gap_last_lower_bound
};

const GapMetrics& GetGapMetrics();

/// Multi-tenant serving metrics (stream/multi_tenant). Gauges track
/// the engine's current registry shape; counters are flushed by the
/// engine on Finish (and incremented directly on evict/restore/
/// quarantine events).
struct TenantMetrics {
  Gauge* active_tenants;       // mqd_tenant_active
  Gauge* clusters;             // mqd_tenant_clusters
  Counter* arrivals;           // mqd_tenant_arrivals_total
  Counter* fanout_deliveries;  // mqd_tenant_fanout_deliveries_total
  Counter* shared_hits;        // mqd_tenant_shared_state_hits_total
  Counter* evictions;          // mqd_tenant_evictions_total
  Counter* restores;           // mqd_tenant_restores_total
  Counter* quarantines;        // mqd_tenant_quarantined_total
  // Parallel cluster sweep + near-identical clustering (DESIGN.md
  // §16): sweeps/shards count dispatches through the thread pool,
  // shard_seconds samples one per-shard latency per sweep, and the
  // residual counters track the fire-log mask-filter corrections that
  // near-identical representative sharing pays at derive time.
  Counter* parallel_sweeps;    // mqd_tenant_parallel_sweeps_total
  Counter* parallel_shards;    // mqd_tenant_parallel_shards_total
  Counter* near_attaches;      // mqd_tenant_near_identical_attaches_total
  Counter* rep_grows;          // mqd_tenant_rep_grows_total
  Counter* residual_corrections;  // mqd_tenant_residual_corrections_total
  Counter* residual_filtered;  // mqd_tenant_residual_filtered_fires_total
  LatencyHistogram* shard_seconds;  // mqd_tenant_shard_seconds
};

const TenantMetrics& GetTenantMetrics();

/// Serving-daemon per-lane family (src/serve, label lane="stream" |
/// "batch"): admission funnel counters, live queue depth and
/// enqueue-to-response latency. shed counts every rejected request
/// regardless of reason (queue_full / deadline_unmeetable / draining).
struct ServeLaneMetrics {
  Counter* submitted;            // mqd_serve_requests_total
  Counter* admitted;             // mqd_serve_admitted_total
  Counter* shed;                 // mqd_serve_shed_total
  Counter* completed;            // mqd_serve_completed_total
  Counter* errors;               // mqd_serve_errors_total
  Gauge* queue_depth;            // mqd_serve_queue_depth
  LatencyHistogram* latency_seconds;  // mqd_serve_latency_seconds
};

const ServeLaneMetrics& ServeLaneMetricsFor(std::string_view lane);

/// mqd_serve_pre_degraded_total{rung}: batch solves that admission
/// started below the full ladder ("ScanPlus", "Scan").
Counter& ServePreDegradedFor(std::string_view rung);

/// Unlabeled daemon-wide counters.
struct ServeMetrics {
  Counter* drains;               // mqd_serve_drains_total
  Counter* drain_shed;           // mqd_serve_drain_shed_total
  Counter* tenant_rejects;       // mqd_serve_tenant_rejects_total
  Counter* fault_rejects;        // mqd_serve_fault_rejects_total
};

const ServeMetrics& GetServeMetrics();

/// Installs the registry-backed ThreadPoolObserver so every ThreadPool
/// reports into GetThreadPoolMetrics(). Idempotent and thread safe;
/// call once near process start (mqd_cli and bench_common do).
void InstallThreadPoolMetrics();

/// Solve-arena metrics, fed through the ArenaObserver hook of
/// util/arena (same layering as the thread pool: util cannot depend
/// on obs). bytes_peak tracks the largest high-water mark any arena
/// has reported; the counters let the zero-allocation regression test
/// assert that steady-state solves stop growing the arenas
/// (block_allocs flat while resets climb).
struct ArenaMetrics {
  Gauge* bytes_peak;             // mqd_arena_bytes_peak
  Counter* resets;               // mqd_arena_resets_total
  Counter* block_allocs;         // mqd_arena_block_allocs_total
};

const ArenaMetrics& GetArenaMetrics();

/// Installs the registry-backed ArenaObserver so every Arena reports
/// into GetArenaMetrics(). Idempotent and thread safe.
void InstallArenaMetrics();

}  // namespace mqd::obs

#endif  // MQD_OBS_STACK_METRICS_H_
