#ifndef MQD_OBS_METRICS_H_
#define MQD_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/histogram.h"
#include "util/result.h"

namespace mqd::obs {

/// Sorted key=value pairs identifying one time series of a metric
/// family (e.g. {{"algorithm", "Scan"}}). Keys must be unique.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotone event counter. Increment is one relaxed atomic add on a
/// thread-local shard (no locks, no cross-core cache-line traffic on
/// the hot path); Value sums the shards and is exact once every
/// incrementing thread has finished.
class Counter {
 public:
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const;
  void Reset();

 private:
  friend class MetricsRegistry;
  Counter() = default;

  /// Stable per-thread shard assignment (round-robin at first use).
  static size_t ShardIndex();

  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-written instantaneous value (queue depth, last lambda, ...).
class Gauge {
 public:
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Concurrent distribution metric over the LinearBuckets scheme of
/// util/histogram (same boundaries as the offline Histogram, so the
/// server path and the evaluation harness bucket identically). Observe
/// is a handful of relaxed atomic ops; count/sum/min/max are exact,
/// quantiles are bucket-midpoint approximations.
class LatencyHistogram {
 public:
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Observe(double value);

  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  /// 0 when empty.
  double Min() const;
  double Max() const;
  /// Approximate quantile from bucket midpoints; q in [0, 1].
  double Quantile(double q) const;

  const LinearBuckets& buckets() const { return spec_; }
  uint64_t BucketCount(size_t bucket) const {
    return bucket_counts_[bucket].load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  friend class MetricsRegistry;
  explicit LatencyHistogram(const LinearBuckets& spec);

  LinearBuckets spec_;
  std::unique_ptr<std::atomic<uint64_t>[]> bucket_counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

enum class MetricType { kCounter, kGauge, kHistogram };

std::string_view MetricTypeName(MetricType type);

/// Point-in-time reading of one time series, as produced by
/// MetricsRegistry::Snapshot (and consumed by obs/exporter.h).
struct MetricSample {
  std::string name;
  LabelSet labels;
  MetricType type = MetricType::kCounter;
  /// Counter (exact) or gauge value.
  double value = 0.0;
  /// Histogram-only fields.
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double bucket_lo = 0.0;
  double bucket_hi = 0.0;
  std::vector<uint64_t> bucket_counts;
};

struct MetricsSnapshot {
  /// Sorted by (name, labels) so exports are deterministic.
  std::vector<MetricSample> samples;

  /// First sample matching name (and labels, when given); nullptr when
  /// absent. Convenience for tests and tools.
  const MetricSample* Find(std::string_view name,
                           const LabelSet& labels = {}) const;
};

/// Owner of every metric time series. Registration takes a short
/// mutex hold and returns a stable handle; call sites cache the handle
/// (typically in a function-local static) so the hot path never
/// touches the lock again. Re-registering the same (name, labels) with
/// the same type (and, for histograms, the same bucket spec) returns
/// the existing handle; any mismatch -- a different type under an
/// existing name, malformed names, duplicate label keys, conflicting
/// bucket specs -- is rejected with InvalidArgument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry all built-in instrumentation writes to.
  static MetricsRegistry& Global();

  Result<Counter*> TryCounter(std::string_view name, LabelSet labels = {});
  Result<Gauge*> TryGauge(std::string_view name, LabelSet labels = {});
  Result<LatencyHistogram*> TryHistogram(std::string_view name,
                                         const LinearBuckets& buckets,
                                         LabelSet labels = {});

  /// CHECK-failing conveniences for call sites with static names.
  Counter& MustCounter(std::string_view name, LabelSet labels = {});
  Gauge& MustGauge(std::string_view name, LabelSet labels = {});
  LatencyHistogram& MustHistogram(std::string_view name,
                                  const LinearBuckets& buckets,
                                  LabelSet labels = {});

  /// Reads every metric (relaxed; concurrent updates may or may not be
  /// visible, each individual series is internally consistent enough
  /// for monitoring).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every value but keeps registrations and handles valid.
  /// Meant for tests that assert exact counts.
  void Reset();

  size_t num_metrics() const;

 private:
  struct Entry {
    std::string name;
    LabelSet labels;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Result<Entry*> GetOrCreate(std::string_view name, LabelSet labels,
                             MetricType type, const LinearBuckets* buckets);

  mutable std::mutex mu_;
  /// Keyed by "name{k=\"v\",...}"; map order = export order.
  std::map<std::string, Entry> entries_;
  /// Prometheus-style invariant: one type per metric name, across all
  /// label sets.
  std::map<std::string, MetricType, std::less<>> name_types_;
};

}  // namespace mqd::obs

#endif  // MQD_OBS_METRICS_H_
