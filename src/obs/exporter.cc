#include "obs/exporter.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "util/string_util.h"

namespace mqd::obs {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Integral values print without a decimal point ("3", not "3.0");
/// everything else gets enough digits to round-trip a metric reading.
std::string JsonNumber(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.007199254740992e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  if (!std::isfinite(value)) return "0";  // JSON has no Inf/NaN.
  return StrFormat("%.9g", value);
}

std::string JsonLabels(const LabelSet& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(labels[i].first) + "\":\"" +
           JsonEscape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

/// `{label="v",...}` or "" when unlabeled; `extra` appends one more
/// pair (used for `le`).
std::string PromLabels(const LabelSet& labels, std::string_view extra = {}) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + labels[i].second + "\"";
  }
  if (!extra.empty()) {
    if (!labels.empty()) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

}  // namespace

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\": [\n";
  for (size_t i = 0; i < snapshot.samples.size(); ++i) {
    const MetricSample& s = snapshot.samples[i];
    out += "  {\"name\": \"" + JsonEscape(s.name) + "\", \"type\": \"" +
           std::string(MetricTypeName(s.type)) + "\", \"labels\": " +
           JsonLabels(s.labels);
    switch (s.type) {
      case MetricType::kCounter:
      case MetricType::kGauge:
        out += ", \"value\": " + JsonNumber(s.value);
        break;
      case MetricType::kHistogram: {
        const double mean =
            s.count == 0 ? 0.0 : s.sum / static_cast<double>(s.count);
        out += ", \"count\": " + JsonNumber(static_cast<double>(s.count));
        out += ", \"sum\": " + JsonNumber(s.sum);
        out += ", \"min\": " + JsonNumber(s.min);
        out += ", \"max\": " + JsonNumber(s.max);
        out += ", \"mean\": " + JsonNumber(mean);
        out += ", \"buckets\": {\"lo\": " + JsonNumber(s.bucket_lo) +
               ", \"hi\": " + JsonNumber(s.bucket_hi) + ", \"counts\": [";
        for (size_t b = 0; b < s.bucket_counts.size(); ++b) {
          if (b > 0) out += ",";
          out += JsonNumber(static_cast<double>(s.bucket_counts[b]));
        }
        out += "]}";
        break;
      }
    }
    out += "}";
    if (i + 1 < snapshot.samples.size()) out += ",";
    out += "\n";
  }
  out += "]}\n";
  return out;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_typed_name;
  for (const MetricSample& s : snapshot.samples) {
    if (s.name != last_typed_name) {
      out += "# TYPE " + s.name + " " + std::string(MetricTypeName(s.type)) +
             "\n";
      last_typed_name = s.name;
    }
    switch (s.type) {
      case MetricType::kCounter:
      case MetricType::kGauge:
        out += s.name + PromLabels(s.labels) + " " + JsonNumber(s.value) +
               "\n";
        break;
      case MetricType::kHistogram: {
        // Cumulative buckets. The final bucket of the LinearBuckets
        // scheme saturates, so its true upper bound is +Inf.
        const size_t n = s.bucket_counts.size();
        const double width =
            n == 0 ? 0.0
                   : (s.bucket_hi - s.bucket_lo) / static_cast<double>(n);
        uint64_t cumulative = 0;
        for (size_t b = 0; b + 1 < n; ++b) {
          cumulative += s.bucket_counts[b];
          const double le =
              s.bucket_lo + static_cast<double>(b + 1) * width;
          out += s.name + "_bucket" +
                 PromLabels(s.labels,
                            "le=\"" + FormatDouble(le, 6) + "\"") +
                 " " + StrFormat("%llu",
                                 static_cast<unsigned long long>(
                                     cumulative)) +
                 "\n";
        }
        out += s.name + "_bucket" + PromLabels(s.labels, "le=\"+Inf\"") +
               " " +
               StrFormat("%llu", static_cast<unsigned long long>(s.count)) +
               "\n";
        out += s.name + "_sum" + PromLabels(s.labels) + " " +
               JsonNumber(s.sum) + "\n";
        out += s.name + "_count" + PromLabels(s.labels) + " " +
               StrFormat("%llu", static_cast<unsigned long long>(s.count)) +
               "\n";
        break;
      }
    }
  }
  return out;
}

Status WriteJsonFile(const MetricsSnapshot& snapshot, std::string_view path) {
  const std::string text = ToJson(snapshot);
  if (path == "-") {
    std::cout << text;
    return Status::OK();
  }
  std::ofstream file((std::string(path)));
  if (!file) {
    return Status::InvalidArgument("cannot open metrics file '" +
                                   std::string(path) + "' for writing");
  }
  file << text;
  file.close();
  if (!file) {
    return Status::Internal("failed writing metrics file '" +
                            std::string(path) + "'");
  }
  return Status::OK();
}

std::string TraceEventsToText(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& e : events) {
    out += StrFormat("[t%llu] %*s%s %s+%s\n",
                     static_cast<unsigned long long>(e.thread_id),
                     e.depth * 2, "", e.name.c_str(),
                     FormatDouble(e.start_seconds, 6).c_str(),
                     FormatDouble(e.duration_seconds, 6).c_str());
  }
  return out;
}

}  // namespace mqd::obs
