#include "topics/topic_model.h"

#include <algorithm>
#include <map>

#include "util/string_util.h"

namespace mqd {

std::vector<Topic> ExtractTopics(const LdaModel& lda,
                                 size_t keywords_per_topic) {
  std::vector<Topic> topics;
  topics.reserve(static_cast<size_t>(lda.num_topics()));
  for (int t = 0; t < lda.num_topics(); ++t) {
    Topic topic;
    topic.name = StrFormat("topic-%d", t);
    for (auto& [word, weight] : lda.TopWords(t, keywords_per_topic)) {
      topic.keywords.push_back(word);
      topic.weights.push_back(weight);
    }
    topics.push_back(std::move(topic));
  }
  return topics;
}

void GroupTopicsByTag(const Corpus& corpus, const LdaModel& lda,
                      double min_purity, std::vector<Topic>* topics) {
  const int k = lda.num_topics();
  // mass[t][tag] = sum over docs with that tag of len(d) * theta_{d,t}.
  std::vector<std::map<int, double>> mass(static_cast<size_t>(k));
  std::vector<double> total(static_cast<size_t>(k), 0.0);
  for (size_t d = 0; d < corpus.num_documents(); ++d) {
    const int tag = corpus.tag(d);
    const double len = static_cast<double>(corpus.document(d).size());
    for (int t = 0; t < k; ++t) {
      const double w = len * lda.DocumentTopicProbability(d, t);
      mass[static_cast<size_t>(t)][tag] += w;
      total[static_cast<size_t>(t)] += w;
    }
  }
  for (int t = 0; t < k && t < static_cast<int>(topics->size()); ++t) {
    const size_t ts = static_cast<size_t>(t);
    int best_tag = -1;
    double best_mass = 0.0;
    for (const auto& [tag, m] : mass[ts]) {
      if (tag >= 0 && m > best_mass) {
        best_mass = m;
        best_tag = tag;
      }
    }
    Topic& topic = (*topics)[ts];
    topic.purity = total[ts] > 0.0 ? best_mass / total[ts] : 0.0;
    topic.group = topic.purity >= min_purity ? best_tag : -1;
  }
}

std::vector<Topic> KeepUnambiguous(std::vector<Topic> topics) {
  topics.erase(std::remove_if(topics.begin(), topics.end(),
                              [](const Topic& t) { return t.group < 0; }),
               topics.end());
  return topics;
}

}  // namespace mqd
