#ifndef MQD_TOPICS_LDA_H_
#define MQD_TOPICS_LDA_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "topics/corpus.h"
#include "util/result.h"
#include "util/rng.h"

namespace mqd {

/// Latent Dirichlet Allocation trained by collapsed Gibbs sampling —
/// the stand-in for the Mallet LDA run of Section 7.1 (the paper:
/// "We applied unsupervised LDA ... to generate 300 topics", keeping
/// the 40 highest-weight keywords per topic).
struct LdaConfig {
  int num_topics = 20;
  /// Symmetric Dirichlet priors (Mallet-style defaults scaled for
  /// short synthetic articles).
  double alpha = 0.1;
  double beta = 0.01;
  int iterations = 150;
  uint64_t seed = 42;
};

class LdaModel {
 public:
  /// Runs the Gibbs sampler over the corpus.
  static Result<LdaModel> Train(const Corpus& corpus,
                                const LdaConfig& config);

  int num_topics() const { return config_.num_topics; }

  /// phi_{k,w}: smoothed probability of term w under topic k.
  double TopicWordProbability(int topic, TermId term) const;

  /// The `n` highest-probability words of a topic with their weights,
  /// descending (the paper's per-topic keyword lists, Table 1).
  std::vector<std::pair<std::string, double>> TopWords(int topic,
                                                       size_t n) const;

  /// theta_{d,k}: smoothed topic proportion of document d.
  double DocumentTopicProbability(size_t doc, int topic) const;

  /// argmax_k theta_{d,k}.
  int DominantTopic(size_t doc) const;

  /// Mean per-token log-likelihood under the trained model (higher is
  /// better; used to sanity-check convergence).
  double TokenLogLikelihood() const;

 private:
  LdaModel(const Corpus& corpus, LdaConfig config);

  void Initialize(Rng* rng);
  void SweepOnce(Rng* rng);

  const Corpus* corpus_;
  LdaConfig config_;
  /// topic assignment of every token, parallel to corpus docs.
  std::vector<std::vector<int>> assignments_;
  /// n_{k,w}: topic-term counts; n_k: tokens per topic; n_{d,k}.
  std::vector<std::vector<int32_t>> topic_term_;
  std::vector<int64_t> topic_total_;
  std::vector<std::vector<int32_t>> doc_topic_;
};

}  // namespace mqd

#endif  // MQD_TOPICS_LDA_H_
