#ifndef MQD_TOPICS_CORPUS_H_
#define MQD_TOPICS_CORPUS_H_

#include <string_view>
#include <vector>

#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace mqd {

/// A bag-of-words corpus for topic modeling (documents as TermId
/// sequences over a shared Vocabulary). The paper trained 300 LDA
/// topics on ~1M news articles; we train on the synthetic news corpus
/// of gen/news_gen.h.
class Corpus {
 public:
  explicit Corpus(TokenizerOptions tokenizer_options = {});

  /// Tokenizes and adds a document; returns its index. `tag` is an
  /// opaque ground-truth marker (the generator's broad-topic id) used
  /// later to group trained topics; pass -1 when unknown.
  size_t AddDocument(std::string_view text, int tag = -1);

  size_t num_documents() const { return docs_.size(); }
  size_t num_terms() const { return vocab_.size(); }
  size_t num_tokens() const { return num_tokens_; }

  const std::vector<TermId>& document(size_t i) const { return docs_[i]; }
  int tag(size_t i) const { return tags_[i]; }
  const Vocabulary& vocabulary() const { return vocab_; }

 private:
  Tokenizer tokenizer_;
  Vocabulary vocab_;
  std::vector<std::vector<TermId>> docs_;
  std::vector<int> tags_;
  size_t num_tokens_ = 0;
};

}  // namespace mqd

#endif  // MQD_TOPICS_CORPUS_H_
