#include "topics/corpus.h"

namespace mqd {

Corpus::Corpus(TokenizerOptions tokenizer_options)
    : tokenizer_(tokenizer_options) {}

size_t Corpus::AddDocument(std::string_view text, int tag) {
  const std::vector<std::string> tokens = tokenizer_.Tokenize(text);
  docs_.push_back(vocab_.InternAll(tokens));
  tags_.push_back(tag);
  num_tokens_ += docs_.back().size();
  return docs_.size() - 1;
}

}  // namespace mqd
