#ifndef MQD_TOPICS_TOPIC_MODEL_H_
#define MQD_TOPICS_TOPIC_MODEL_H_

#include <string>
#include <vector>

#include "topics/lda.h"

namespace mqd {

/// A query topic: the unit the paper uses as a "query"/label. Each
/// trained LDA topic is kept as its top-k keyword list; a post matches
/// the topic when it contains at least one keyword (Section 7.1).
struct Topic {
  std::string name;
  std::vector<std::string> keywords;  // descending weight
  std::vector<double> weights;
  /// Broad-topic group (politics, sports, ...); -1 = discarded as
  /// ambiguous.
  int group = -1;
  /// Fraction of the topic's probability mass explained by its
  /// dominant broad topic (the grouping confidence).
  double purity = 0.0;
};

/// Extracts the top-`keywords_per_topic` keyword lists of every
/// trained topic (paper: top 40).
std::vector<Topic> ExtractTopics(const LdaModel& lda,
                                 size_t keywords_per_topic = 40);

/// Groups topics into broad topics using the corpus ground-truth tags
/// (simulating the paper's manual grouping by three researchers, who
/// discarded ambiguous topics — kept 215 of 300): each topic is
/// assigned the tag whose documents contribute most of the topic's
/// tokens; topics whose purity is below `min_purity` get group = -1.
///
/// `assignment_weight(doc, topic)` is approximated by theta_{d,k}
/// weighted by document length.
void GroupTopicsByTag(const Corpus& corpus, const LdaModel& lda,
                      double min_purity, std::vector<Topic>* topics);

/// Drops group = -1 topics.
std::vector<Topic> KeepUnambiguous(std::vector<Topic> topics);

}  // namespace mqd

#endif  // MQD_TOPICS_TOPIC_MODEL_H_
