#include "topics/lda.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace mqd {

Result<LdaModel> LdaModel::Train(const Corpus& corpus,
                                 const LdaConfig& config) {
  if (config.num_topics < 1) {
    return Status::InvalidArgument("num_topics must be >= 1");
  }
  if (config.alpha <= 0.0 || config.beta <= 0.0) {
    return Status::InvalidArgument("Dirichlet priors must be positive");
  }
  if (corpus.num_documents() == 0 || corpus.num_tokens() == 0) {
    return Status::InvalidArgument("empty corpus");
  }
  LdaModel model(corpus, config);
  Rng rng(config.seed);
  model.Initialize(&rng);
  for (int iter = 0; iter < config.iterations; ++iter) {
    model.SweepOnce(&rng);
  }
  return model;
}

LdaModel::LdaModel(const Corpus& corpus, LdaConfig config)
    : corpus_(&corpus), config_(config) {}

void LdaModel::Initialize(Rng* rng) {
  const size_t num_docs = corpus_->num_documents();
  const size_t num_terms = corpus_->num_terms();
  const int k = config_.num_topics;

  assignments_.resize(num_docs);
  doc_topic_.assign(num_docs, std::vector<int32_t>(static_cast<size_t>(k), 0));
  topic_term_.assign(static_cast<size_t>(k),
                     std::vector<int32_t>(num_terms, 0));
  topic_total_.assign(static_cast<size_t>(k), 0);

  for (size_t d = 0; d < num_docs; ++d) {
    const std::vector<TermId>& doc = corpus_->document(d);
    assignments_[d].resize(doc.size());
    for (size_t i = 0; i < doc.size(); ++i) {
      const int topic =
          static_cast<int>(rng->Uniform(static_cast<uint64_t>(k)));
      assignments_[d][i] = topic;
      ++doc_topic_[d][static_cast<size_t>(topic)];
      ++topic_term_[static_cast<size_t>(topic)][doc[i]];
      ++topic_total_[static_cast<size_t>(topic)];
    }
  }
}

void LdaModel::SweepOnce(Rng* rng) {
  const int k = config_.num_topics;
  const double beta = config_.beta;
  const double alpha = config_.alpha;
  const double beta_sum = beta * static_cast<double>(corpus_->num_terms());
  std::vector<double> weights(static_cast<size_t>(k));

  for (size_t d = 0; d < corpus_->num_documents(); ++d) {
    const std::vector<TermId>& doc = corpus_->document(d);
    for (size_t i = 0; i < doc.size(); ++i) {
      const TermId w = doc[i];
      const int old_topic = assignments_[d][i];
      // Remove the token from the counts.
      --doc_topic_[d][static_cast<size_t>(old_topic)];
      --topic_term_[static_cast<size_t>(old_topic)][w];
      --topic_total_[static_cast<size_t>(old_topic)];

      // Full conditional p(z = t | .) ~ (n_{d,t} + alpha) *
      // (n_{t,w} + beta) / (n_t + beta*V).
      double total = 0.0;
      for (int t = 0; t < k; ++t) {
        const size_t ts = static_cast<size_t>(t);
        const double p =
            (doc_topic_[d][ts] + alpha) * (topic_term_[ts][w] + beta) /
            (static_cast<double>(topic_total_[ts]) + beta_sum);
        total += p;
        weights[ts] = total;
      }
      const double u = rng->NextDouble() * total;
      const int new_topic = static_cast<int>(
          std::lower_bound(weights.begin(), weights.end(), u) -
          weights.begin());

      assignments_[d][i] = new_topic;
      ++doc_topic_[d][static_cast<size_t>(new_topic)];
      ++topic_term_[static_cast<size_t>(new_topic)][w];
      ++topic_total_[static_cast<size_t>(new_topic)];
    }
  }
}

double LdaModel::TopicWordProbability(int topic, TermId term) const {
  const size_t t = static_cast<size_t>(topic);
  const double beta_sum =
      config_.beta * static_cast<double>(corpus_->num_terms());
  return (topic_term_[t][term] + config_.beta) /
         (static_cast<double>(topic_total_[t]) + beta_sum);
}

std::vector<std::pair<std::string, double>> LdaModel::TopWords(
    int topic, size_t n) const {
  const size_t t = static_cast<size_t>(topic);
  std::vector<TermId> terms(corpus_->num_terms());
  for (TermId w = 0; w < terms.size(); ++w) terms[w] = w;
  const size_t take = std::min(n, terms.size());
  std::partial_sort(terms.begin(), terms.begin() + static_cast<long>(take),
                    terms.end(), [&](TermId a, TermId b) {
                      return topic_term_[t][a] > topic_term_[t][b];
                    });
  std::vector<std::pair<std::string, double>> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.emplace_back(corpus_->vocabulary().Word(terms[i]),
                     TopicWordProbability(topic, terms[i]));
  }
  return out;
}

double LdaModel::DocumentTopicProbability(size_t doc, int topic) const {
  const std::vector<int32_t>& counts = doc_topic_[doc];
  const double alpha_sum =
      config_.alpha * static_cast<double>(config_.num_topics);
  const double len = static_cast<double>(corpus_->document(doc).size());
  return (counts[static_cast<size_t>(topic)] + config_.alpha) /
         (len + alpha_sum);
}

int LdaModel::DominantTopic(size_t doc) const {
  const std::vector<int32_t>& counts = doc_topic_[doc];
  return static_cast<int>(std::max_element(counts.begin(), counts.end()) -
                          counts.begin());
}

double LdaModel::TokenLogLikelihood() const {
  double total = 0.0;
  size_t tokens = 0;
  for (size_t d = 0; d < corpus_->num_documents(); ++d) {
    for (TermId w : corpus_->document(d)) {
      double p = 0.0;
      for (int t = 0; t < config_.num_topics; ++t) {
        p += DocumentTopicProbability(d, t) * TopicWordProbability(t, w);
      }
      total += std::log(std::max(p, 1e-300));
      ++tokens;
    }
  }
  return tokens == 0 ? 0.0 : total / static_cast<double>(tokens);
}

}  // namespace mqd
