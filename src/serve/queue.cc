#include "serve/queue.h"

namespace mqd {

RequestQueue::RequestQueue(size_t stream_capacity, size_t batch_capacity)
    : stream_capacity_(stream_capacity), batch_capacity_(batch_capacity) {}

bool RequestQueue::TryPush(ServeLane lane, QueuedRequest* item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    std::deque<QueuedRequest>& q =
        lane == ServeLane::kStream ? stream_ : batch_;
    if (q.size() >= capacity(lane)) return false;
    q.push_back(std::move(*item));
  }
  cv_.notify_one();
  return true;
}

bool RequestQueue::PopBlocking(QueuedRequest* out, ServeLane* lane) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (closed_) return false;
    if (!stream_.empty() && !stream_in_service_) {
      *out = std::move(stream_.front());
      stream_.pop_front();
      *lane = ServeLane::kStream;
      stream_in_service_ = true;
      return true;
    }
    if (!batch_.empty()) {
      *out = std::move(batch_.front());
      batch_.pop_front();
      *lane = ServeLane::kBatch;
      return true;
    }
    cv_.wait(lock);
  }
}

void RequestQueue::StreamServiceDone() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stream_in_service_ = false;
  }
  // The next queued stream request (if any) is now eligible.
  cv_.notify_all();
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<std::pair<ServeLane, QueuedRequest>> RequestQueue::DrainAll() {
  std::vector<std::pair<ServeLane, QueuedRequest>> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(stream_.size() + batch_.size());
  for (QueuedRequest& item : stream_) {
    out.emplace_back(ServeLane::kStream, std::move(item));
  }
  stream_.clear();
  for (QueuedRequest& item : batch_) {
    out.emplace_back(ServeLane::kBatch, std::move(item));
  }
  batch_.clear();
  return out;
}

size_t RequestQueue::depth(ServeLane lane) const {
  std::lock_guard<std::mutex> lock(mu_);
  return lane == ServeLane::kStream ? stream_.size() : batch_.size();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace mqd
