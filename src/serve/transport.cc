#include "serve/transport.h"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <memory>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/fault_injection.h"

namespace mqd {
namespace {

constexpr const char* kSiteAccept = "serve.accept";

Status ProbeAccept() {
  try {
    return FaultInjector::Global().MaybeInject(kSiteAccept);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("injected exception at serve.accept: ") +
                            e.what());
  }
}

// Per-client response bookkeeping shared with the callbacks of its
// still-queued requests: a pipelined client's `drain` line means
// "after everything I already sent", so the reader quiesces
// (outstanding == 0) before submitting the drain. Without the barrier
// a piped script's own requests race the workers into the drain sweep.
struct LineClientState {
  explicit LineClientState(std::ostream& out) : out(out) {}
  std::ostream& out;
  std::mutex mu;
  std::condition_variable cv;
  int outstanding = 0;

  void WriteLine(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    out << line << '\n' << std::flush;
  }
  void Quiesce() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding == 0; });
  }
};

// One request line -> Submit; the callback writes the response line.
// Returns true when the line was a drain request (the caller should
// stop reading).
bool HandleLine(Server* server, const std::string& line,
                LineClientState* state) {
  if (line.empty()) return false;
  Status accept = ProbeAccept();
  if (!accept.ok()) {
    state->WriteLine(ServeResponse::Error("-", std::move(accept)).Format());
    return false;
  }
  Result<ServeRequest> parsed = ParseServeRequest(line);
  if (!parsed.ok()) {
    state->WriteLine(ServeResponse::Error("-", parsed.status()).Format());
    return false;
  }
  const bool is_drain = parsed->verb == ServeVerb::kDrain;
  if (is_drain) state->Quiesce();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    ++state->outstanding;
  }
  server->Submit(std::move(*parsed), [state](const ServeResponse& r) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->out << r.Format() << '\n' << std::flush;
      --state->outstanding;
    }
    state->cv.notify_all();
  });
  // Submit handles drain synchronously (the callback has run by now),
  // so returning here cannot lose responses.
  return is_drain;
}

}  // namespace

Status ServeStdio(Server* server, std::istream& in, std::ostream& out) {
  // Stack lifetime is safe: both exits below guarantee every callback
  // has run before this frame unwinds (drain is synchronous in
  // Submit; Drain() answers everything still queued).
  LineClientState state(out);
  std::string line;
  bool drained_by_request = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (HandleLine(server, line, &state)) {
      drained_by_request = true;
      break;
    }
  }
  // EOF without an explicit drain: same graceful path — in-flight
  // requests complete, queued ones are shed with responses written
  // before we return.
  if (!drained_by_request) return server->Drain();
  return Status::OK();
}

namespace {

// Writes response lines straight to the socket (no stdio buffering).
struct FdWriter : std::streambuf {
  explicit FdWriter(int fd) : fd(fd) {}
  int fd;
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    std::streamsize written = 0;
    while (written < n) {
      ssize_t w = ::send(fd, s + written, static_cast<size_t>(n - written),
                         MSG_NOSIGNAL);
      if (w <= 0) return written;
      written += w;
    }
    return written;
  }
  int overflow(int ch) override {
    if (ch == traits_type::eof()) return 0;
    char c = static_cast<char>(ch);
    return xsputn(&c, 1) == 1 ? ch : traits_type::eof();
  }
};

// Shared between the connection reader and the response callbacks of
// its still-queued requests: the reader must not close the socket
// until every submitted request has answered (callbacks hold a
// shared_ptr, the reader waits for `outstanding` to hit zero).
struct ConnState {
  explicit ConnState(int fd) : writer(fd), out(&writer) {}
  FdWriter writer;
  std::ostream out;
  std::mutex mu;
  std::condition_variable cv;
  int outstanding = 0;

  void WriteLine(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    out << line << '\n' << std::flush;
  }
};

// Reads newline-framed requests from `fd` until EOF or drain.
void ConnectionLoop(Server* server, int fd, std::atomic<bool>* stop) {
  auto state = std::make_shared<ConnState>(fd);
  std::string pending;
  char buf[4096];
  bool drain = false;

  while (!drain) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    pending.append(buf, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = pending.find('\n', start);
         nl != std::string::npos && !drain; nl = pending.find('\n', start)) {
      std::string line = pending.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      Status accept = ProbeAccept();
      if (!accept.ok()) {
        state->WriteLine(ServeResponse::Error("-", std::move(accept)).Format());
        continue;
      }
      Result<ServeRequest> parsed = ParseServeRequest(line);
      if (!parsed.ok()) {
        state->WriteLine(ServeResponse::Error("-", parsed.status()).Format());
        continue;
      }
      drain = parsed->verb == ServeVerb::kDrain;
      if (drain) {
        // Same pipelined-drain barrier as stdio: this connection's
        // earlier requests finish first. Other connections' queued
        // requests are the drain sweep's documented blast radius.
        std::unique_lock<std::mutex> lock(state->mu);
        state->cv.wait(lock, [&] { return state->outstanding == 0; });
      }
      {
        std::lock_guard<std::mutex> lock(state->mu);
        ++state->outstanding;
      }
      server->Submit(std::move(*parsed), [state](const ServeResponse& r) {
        {
          std::lock_guard<std::mutex> lock(state->mu);
          state->out << r.Format() << '\n' << std::flush;
          --state->outstanding;
        }
        state->cv.notify_all();
      });
    }
    pending.erase(0, start);
  }
  if (drain) stop->store(true, std::memory_order_release);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->outstanding == 0; });
  lock.unlock();
  ::close(fd);
}

}  // namespace

Status ServeTcp(Server* server, int port, std::ostream& announce) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd);
    return status;
  }
  if (::listen(listen_fd, 16) < 0) {
    Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  announce << "serving on 127.0.0.1:" << ntohs(addr.sin_port) << "\n"
           << std::flush;

  std::atomic<bool> stop{false};
  std::vector<std::thread> connections;
  while (!stop.load(std::memory_order_acquire)) {
    // Poll so a drain on some connection thread stops the listener
    // promptly instead of blocking in accept() forever.
    pollfd pfd{listen_fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) break;  // listener closed or fatal accept error
    Status accept_fault = ProbeAccept();
    if (!accept_fault.ok()) {
      // Shed at accept: one error line, then the connection is gone.
      ServeResponse r = ServeResponse::Error("-", std::move(accept_fault));
      std::string line = r.Format() + "\n";
      (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    connections.emplace_back(ConnectionLoop, server, fd, &stop);
  }
  ::close(listen_fd);
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
  return server->Drain();
}

}  // namespace mqd
