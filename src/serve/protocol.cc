#include "serve/protocol.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace mqd {
namespace {

// Splits on runs of spaces/tabs. The framing layer has already
// stripped the newline.
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

// strtod with full-consumption + finiteness checks: "nan", "inf",
// "1e999" and "3.5junk" are all protocol errors, not values.
Status ParseFiniteDouble(std::string_view key, std::string_view text,
                         double* out) {
  std::string buf(text);
  if (buf.empty()) {
    return Status::InvalidArgument("empty value for key '" + std::string(key) +
                                   "'");
  }
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    return Status::InvalidArgument("value for key '" + std::string(key) +
                                   "' must be a finite number, got '" + buf +
                                   "'");
  }
  *out = value;
  return Status::OK();
}

Status ParseU64(std::string_view key, std::string_view text, int base,
                uint64_t* out) {
  std::string buf(text);
  if (buf.empty() || buf[0] == '-' || buf[0] == '+') {
    return Status::InvalidArgument("value for key '" + std::string(key) +
                                   "' must be a non-negative integer, got '" +
                                   buf + "'");
  }
  errno = 0;
  char* end = nullptr;
  uint64_t value = std::strtoull(buf.c_str(), &end, base);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::InvalidArgument("value for key '" + std::string(key) +
                                   "' is not a valid integer: '" + buf + "'");
  }
  *out = value;
  return Status::OK();
}

std::string FormatDoubleKv(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string_view ServeVerbName(ServeVerb verb) {
  switch (verb) {
    case ServeVerb::kSolve: return "solve";
    case ServeVerb::kFeed: return "feed";
    case ServeVerb::kFinish: return "finish";
    case ServeVerb::kSubscribe: return "subscribe";
    case ServeVerb::kUnsubscribe: return "unsubscribe";
    case ServeVerb::kEmissions: return "emissions";
    case ServeVerb::kStats: return "stats";
    case ServeVerb::kPing: return "ping";
    case ServeVerb::kDrain: return "drain";
  }
  return "unknown";
}

std::string_view ServeLaneName(ServeLane lane) {
  return lane == ServeLane::kStream ? "stream" : "batch";
}

ServeLane LaneOfVerb(ServeVerb verb) {
  return verb == ServeVerb::kSolve ? ServeLane::kBatch : ServeLane::kStream;
}

bool IsInlineVerb(ServeVerb verb) {
  return verb == ServeVerb::kStats || verb == ServeVerb::kPing ||
         verb == ServeVerb::kDrain;
}

Result<ServeRequest> ParseServeRequest(std::string_view line) {
  std::vector<std::string_view> tokens = Tokenize(line);
  if (tokens.size() < 2) {
    return Status::InvalidArgument(
        "request must be '<id> <verb> [key=value]...'");
  }
  ServeRequest req;
  if (tokens[0].find('=') != std::string_view::npos) {
    return Status::InvalidArgument("request id may not contain '='");
  }
  req.id = std::string(tokens[0]);

  std::string_view verb = tokens[1];
  if (verb == "solve") req.verb = ServeVerb::kSolve;
  else if (verb == "feed") req.verb = ServeVerb::kFeed;
  else if (verb == "finish") req.verb = ServeVerb::kFinish;
  else if (verb == "subscribe") req.verb = ServeVerb::kSubscribe;
  else if (verb == "unsubscribe") req.verb = ServeVerb::kUnsubscribe;
  else if (verb == "emissions") req.verb = ServeVerb::kEmissions;
  else if (verb == "stats") req.verb = ServeVerb::kStats;
  else if (verb == "ping") req.verb = ServeVerb::kPing;
  else if (verb == "drain") req.verb = ServeVerb::kDrain;
  else {
    return Status::InvalidArgument("unknown verb '" + std::string(verb) + "'");
  }

  bool saw_mask = false;
  bool saw_tenant = false;
  for (size_t i = 2; i < tokens.size(); ++i) {
    std::string_view tok = tokens[i];
    size_t eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("expected key=value, got '" +
                                     std::string(tok) + "'");
    }
    std::string_view key = tok.substr(0, eq);
    std::string_view value = tok.substr(eq + 1);
    if (key == "lambda" && req.verb == ServeVerb::kSolve) {
      MQD_RETURN_NOT_OK(ParseFiniteDouble(key, value, &req.lambda));
      if (req.lambda <= 0.0) {
        return Status::InvalidArgument("lambda must be > 0");
      }
    } else if (key == "budget_ms" && req.verb == ServeVerb::kSolve) {
      MQD_RETURN_NOT_OK(ParseFiniteDouble(key, value, &req.budget_ms));
      if (req.budget_ms < 0.0) {
        return Status::InvalidArgument("budget_ms must be >= 0");
      }
    } else if (key == "posts" && req.verb == ServeVerb::kFeed) {
      uint64_t posts = 0;
      MQD_RETURN_NOT_OK(ParseU64(key, value, 10, &posts));
      if (posts == 0 || posts > (1u << 30)) {
        return Status::InvalidArgument("posts must be in [1, 2^30]");
      }
      req.posts = static_cast<uint32_t>(posts);
    } else if (key == "mask" && req.verb == ServeVerb::kSubscribe) {
      uint64_t mask = 0;
      MQD_RETURN_NOT_OK(ParseU64(key, value, 16, &mask));
      if (mask == 0) {
        return Status::InvalidArgument("mask must be a nonzero hex label set");
      }
      req.mask = static_cast<LabelMask>(mask);
      saw_mask = true;
    } else if (key == "tenant" && (req.verb == ServeVerb::kUnsubscribe ||
                                   req.verb == ServeVerb::kEmissions)) {
      uint64_t tenant = 0;
      MQD_RETURN_NOT_OK(ParseU64(key, value, 10, &tenant));
      if (tenant >= kInvalidTenant) {
        return Status::InvalidArgument("tenant id out of range");
      }
      req.tenant = static_cast<TenantId>(tenant);
      saw_tenant = true;
    } else {
      return Status::InvalidArgument("unknown key '" + std::string(key) +
                                     "' for verb '" + std::string(verb) + "'");
    }
  }
  if (req.verb == ServeVerb::kSubscribe && !saw_mask) {
    return Status::InvalidArgument("subscribe requires mask=<hex>");
  }
  if (req.verb == ServeVerb::kUnsubscribe && !saw_tenant) {
    return Status::InvalidArgument("unsubscribe requires tenant=<id>");
  }
  return req;
}

std::string ServeResponse::Format() const {
  std::string out = id;
  switch (outcome) {
    case ServeOutcome::kOk:
      out += " ok";
      if (!body.empty()) {
        out += ' ';
        out += body;
      }
      break;
    case ServeOutcome::kShed:
      out += " shed reason=";
      out += shed_reason;
      out += " retry_after_ms=";
      out += FormatDoubleKv(retry_after_ms);
      break;
    case ServeOutcome::kError:
      out += " error ";
      out += status.ToString();
      break;
  }
  return out;
}

ServeResponse ServeResponse::Ok(std::string id, std::string body) {
  ServeResponse r;
  r.id = std::move(id);
  r.outcome = ServeOutcome::kOk;
  r.body = std::move(body);
  return r;
}

ServeResponse ServeResponse::Shed(std::string id, std::string_view reason,
                                  double retry_after_ms) {
  ServeResponse r;
  r.id = std::move(id);
  r.outcome = ServeOutcome::kShed;
  r.shed_reason = std::string(reason);
  r.retry_after_ms = retry_after_ms;
  return r;
}

ServeResponse ServeResponse::Error(std::string id, Status status) {
  ServeResponse r;
  r.id = std::move(id);
  r.outcome = ServeOutcome::kError;
  r.status = std::move(status);
  return r;
}

}  // namespace mqd
