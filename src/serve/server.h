#ifndef MQD_SERVE_SERVER_H_
#define MQD_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/coverage.h"
#include "core/degrade.h"
#include "core/instance.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/queue.h"
#include "stream/factory.h"
#include "stream/multi_tenant.h"

namespace mqd {

struct ServeConfig {
  /// Stream engine for the feed/finish verbs.
  StreamKind stream_kind = StreamKind::kStreamScanPlus;
  double lambda = 60.0;
  double tau = 10.0;
  /// Worker threads draining the queue (>= 1).
  int workers = 2;
  AdmissionConfig admission;
  /// Deliberate minimum service time per batch solve (load-drill
  /// knob: makes overload reproducible on any machine). 0 = off.
  double service_floor_ms = 0.0;
  /// > 0 switches to tenant mode: feed drives a MultiTenantStream and
  /// subscribe/unsubscribe/emissions manage per-tenant profiles, with
  /// subscribe shed once `admission.max_tenants` are active.
  bool tenant_mode = false;
  /// Single-stream mode: drain checkpoints the replay state here
  /// (PR 5 snapshot format) and Create restores from it when the file
  /// exists — the kill/restore story of the daemon.
  std::string checkpoint_path;
};

struct ServeStatsSnapshot {
  uint64_t submitted[2] = {0, 0};   // indexed by ServeLane
  uint64_t admitted[2] = {0, 0};
  uint64_t shed[2] = {0, 0};
  uint64_t completed[2] = {0, 0};
  uint64_t errors[2] = {0, 0};
  uint64_t pre_degraded = 0;
  uint64_t drain_shed = 0;
  uint64_t tenant_rejects = 0;
  uint64_t emitted = 0;
  PostId cursor = 0;
  size_t depth_stream = 0;
  size_t depth_batch = 0;
  size_t tenants = 0;
  bool draining = false;
  double ewma_batch_ms = 0.0;
};

/// The serving daemon core: admission -> bounded two-lane queue ->
/// worker pool over the degradation ladders and the stream engine.
/// Transport-agnostic — stdio/TCP framing lives in serve/transport.
///
/// Threading: Submit and Stats are safe from any thread. Stream-lane
/// requests are serialized by the queue (one replay engine); batch
/// solves are read-only on the instance and run concurrently.
/// Exactly-once responses: every Submit invokes its callback exactly
/// once — inline (shed/error/inline verb), from a worker, or from the
/// drain sweep (shed reason=draining).
class Server {
 public:
  /// `inst` must outlive the server. Fails if the stream engine can't
  /// be built (bad tau/kind) or a configured checkpoint exists but is
  /// corrupt/mismatched (fail loudly rather than serve from a wrong
  /// cursor).
  static Result<std::unique_ptr<Server>> Create(const Instance& inst,
                                                const ServeConfig& config);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void Submit(ServeRequest req, ServeResponseCallback callback);

  /// Synchronous convenience wrapper around Submit (tests, bench).
  ServeResponse Call(const ServeRequest& req);

  /// Graceful shutdown: stop admitting, let in-flight requests
  /// complete, shed everything still queued with reason=draining,
  /// then checkpoint the stream state (single-stream mode with a
  /// configured path). Idempotent.
  Status Drain();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  ServeStatsSnapshot Stats() const;
  PostId cursor() const { return cursor_.load(std::memory_order_relaxed); }
  const ServeConfig& config() const { return config_; }
  /// Set when Create restored the replay cursor from a checkpoint.
  bool restored_from_checkpoint() const { return restored_; }

 private:
  Server(const Instance& inst, const ServeConfig& config);

  Status Init();
  void WorkerLoop();
  void Execute(ServeLane lane, QueuedRequest item);
  ServeResponse ExecuteLocked(ServeLane lane, const QueuedRequest& item);
  ServeResponse HandleInline(const ServeRequest& req);
  ServeResponse DoSolve(const QueuedRequest& item);
  ServeResponse DoFeed(const ServeRequest& req);
  ServeResponse DoFinish(const ServeRequest& req);
  ServeResponse DoSubscribe(const ServeRequest& req);
  ServeResponse DoUnsubscribe(const ServeRequest& req);
  ServeResponse DoEmissions(const ServeRequest& req);
  std::string FormatStats() const;

  const Instance& inst_;
  const ServeConfig config_;
  UniformLambda model_;
  AdmissionController admission_;
  RequestQueue queue_;

  /// Pre-degrade ladders indexed by AdmissionDecision::ladder_start:
  /// [0] GreedySC->Scan+->Scan, [1] Scan+->Scan, [2] Scan (trivial
  /// rung implicit in all three).
  std::unique_ptr<DegradingSolver> ladders_[3];

  /// Single-stream mode.
  std::unique_ptr<StreamProcessor> processor_;
  /// Tenant mode.
  std::unique_ptr<MultiTenantStream> tenants_;

  std::vector<std::thread> workers_;
  std::atomic<bool> draining_{false};
  std::mutex drain_mu_;
  bool drained_ = false;
  bool restored_ = false;

  std::atomic<uint32_t> cursor_{0};
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> submitted_[2] = {{0}, {0}};
  std::atomic<uint64_t> admitted_[2] = {{0}, {0}};
  std::atomic<uint64_t> shed_[2] = {{0}, {0}};
  std::atomic<uint64_t> completed_[2] = {{0}, {0}};
  std::atomic<uint64_t> errors_[2] = {{0}, {0}};
  std::atomic<uint64_t> pre_degraded_{0};
  std::atomic<uint64_t> drain_shed_{0};
  std::atomic<uint64_t> tenant_rejects_{0};
  std::atomic<uint64_t> tenant_count_{0};
};

}  // namespace mqd

#endif  // MQD_SERVE_SERVER_H_
