#include "serve/server.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <thread>
#include <utility>

#include "core/greedy_sc.h"
#include "core/scan.h"
#include "obs/stack_metrics.h"
#include "stream/checkpoint.h"
#include "util/fault_injection.h"

namespace mqd {
namespace {

constexpr const char* kSiteQueue = "serve.queue";
constexpr const char* kSiteWorker = "serve.worker";

int LaneIndex(ServeLane lane) { return static_cast<int>(lane); }

// Fault probes may be configured to throw; the daemon must convert
// that into a typed error response, never die.
Status ProbeFault(const char* site) {
  try {
    return FaultInjector::Global().MaybeInject(site);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("injected exception at ") + site +
                            ": " + e.what());
  }
}

std::string_view LadderStartName(int ladder_start) {
  switch (ladder_start) {
    case 1: return "ScanPlus";
    case 2: return "Scan";
    default: return "GreedySC";
  }
}

void AppendKv(std::string* out, const char* key, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%s=%llu", out->empty() ? "" : " ", key,
                static_cast<unsigned long long>(value));
  *out += buf;
}

void AppendKvF(std::string* out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%s=%.3f", out->empty() ? "" : " ", key,
                value);
  *out += buf;
}

void AppendKvS(std::string* out, const char* key, std::string_view value) {
  if (!out->empty()) *out += ' ';
  *out += key;
  *out += '=';
  *out += value;
}

}  // namespace

Server::Server(const Instance& inst, const ServeConfig& config)
    : inst_(inst),
      config_(config),
      model_(config.lambda),
      admission_(config.admission),
      queue_(config.admission.stream_capacity,
             config.admission.batch_capacity) {}

Result<std::unique_ptr<Server>> Server::Create(const Instance& inst,
                                               const ServeConfig& config) {
  if (config.workers < 1 || config.workers > 512) {
    return Status::InvalidArgument("serve: workers must be in [1, 512]");
  }
  if (!std::isfinite(config.lambda) || config.lambda <= 0.0) {
    return Status::InvalidArgument("serve: lambda must be finite and > 0");
  }
  if (!std::isfinite(config.service_floor_ms) ||
      config.service_floor_ms < 0.0) {
    return Status::InvalidArgument(
        "serve: service_floor_ms must be finite and >= 0");
  }
  if (config.admission.stream_capacity == 0 ||
      config.admission.batch_capacity == 0) {
    return Status::InvalidArgument("serve: lane capacities must be >= 1");
  }
  std::unique_ptr<Server> server(new Server(inst, config));
  MQD_RETURN_NOT_OK(server->Init());
  return server;
}

Status Server::Init() {
  // The three pre-degrade ladders admission can route to. Each still
  // falls through to cheaper rungs (and the implicit trivial cover)
  // on deadline exhaustion, so admitted solves always answer.
  {
    std::vector<std::unique_ptr<Solver>> rungs;
    rungs.push_back(std::make_unique<GreedySCSolver>());
    rungs.push_back(std::make_unique<ScanPlusSolver>());
    rungs.push_back(std::make_unique<ScanSolver>());
    ladders_[0] = std::make_unique<DegradingSolver>(std::move(rungs));
  }
  {
    std::vector<std::unique_ptr<Solver>> rungs;
    rungs.push_back(std::make_unique<ScanPlusSolver>());
    rungs.push_back(std::make_unique<ScanSolver>());
    ladders_[1] = std::make_unique<DegradingSolver>(std::move(rungs));
  }
  {
    std::vector<std::unique_ptr<Solver>> rungs;
    rungs.push_back(std::make_unique<ScanSolver>());
    ladders_[2] = std::make_unique<DegradingSolver>(std::move(rungs));
  }

  if (config_.tenant_mode) {
    MQD_ASSIGN_OR_RETURN(
        tenants_, MultiTenantStream::Create(inst_, model_,
                                            config_.stream_kind, config_.tau));
  } else {
    MQD_ASSIGN_OR_RETURN(
        processor_, CreateStreamProcessorChecked(config_.stream_kind, inst_,
                                                 model_, config_.tau));
    if (!config_.checkpoint_path.empty()) {
      std::ifstream probe(config_.checkpoint_path, std::ios::binary);
      if (probe.good()) {
        probe.close();
        MQD_ASSIGN_OR_RETURN(
            PostId cursor,
            ReadStreamCheckpointFromFile(processor_.get(), inst_,
                                         config_.checkpoint_path));
        cursor_.store(cursor, std::memory_order_relaxed);
        emitted_.store(processor_->emissions().size(),
                       std::memory_order_relaxed);
        restored_ = true;
      }
    }
  }

  workers_.reserve(static_cast<size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

Server::~Server() {
  Status status = Drain();
  (void)status;  // Drain failures are already counted in metrics.
}

void Server::Submit(ServeRequest req, ServeResponseCallback callback) {
  const ServeLane lane = LaneOfVerb(req.verb);
  const auto& lane_metrics = obs::ServeLaneMetricsFor(ServeLaneName(lane));
  lane_metrics.submitted->Increment();
  submitted_[LaneIndex(lane)].fetch_add(1, std::memory_order_relaxed);

  if (IsInlineVerb(req.verb)) {
    callback(HandleInline(req));
    return;
  }

  Status fault = ProbeFault(kSiteQueue);
  if (!fault.ok()) {
    lane_metrics.errors->Increment();
    errors_[LaneIndex(lane)].fetch_add(1, std::memory_order_relaxed);
    callback(ServeResponse::Error(std::move(req.id), std::move(fault)));
    return;
  }

  AdmissionDecision decision =
      admission_.Decide(lane, queue_.depth(lane), req.budget_ms, draining());
  if (!decision.admit) {
    lane_metrics.shed->Increment();
    shed_[LaneIndex(lane)].fetch_add(1, std::memory_order_relaxed);
    callback(ServeResponse::Shed(std::move(req.id), decision.shed_reason,
                                 decision.retry_after_ms));
    return;
  }

  QueuedRequest item;
  item.request = std::move(req);
  item.callback = std::move(callback);
  item.enqueue_time = std::chrono::steady_clock::now();
  item.deadline = decision.budget_ms > 0.0
                      ? Deadline::AfterSeconds(decision.budget_ms * 1e-3)
                      : Deadline::Unbounded();
  item.ladder_start = decision.ladder_start;

  if (!queue_.TryPush(lane, &item)) {
    // Lost the race against concurrent submitters (or the drain): the
    // depth we admitted on is stale. Shed rather than block.
    const bool closed = queue_.closed();
    lane_metrics.shed->Increment();
    shed_[LaneIndex(lane)].fetch_add(1, std::memory_order_relaxed);
    item.callback(ServeResponse::Shed(
        std::move(item.request.id), closed ? "draining" : "queue_full",
        static_cast<double>(queue_.capacity(lane)) *
            std::max(admission_.EwmaBatchServiceMs(), 1.0)));
    return;
  }
  lane_metrics.admitted->Increment();
  lane_metrics.queue_depth->Set(static_cast<double>(queue_.depth(lane)));
  admitted_[LaneIndex(lane)].fetch_add(1, std::memory_order_relaxed);
}

ServeResponse Server::Call(const ServeRequest& req) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  ServeResponse response;
  Submit(req, [&](const ServeResponse& r) {
    std::lock_guard<std::mutex> lock(mu);
    response = r;
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return response;
}

void Server::WorkerLoop() {
  QueuedRequest item;
  ServeLane lane;
  while (queue_.PopBlocking(&item, &lane)) {
    Execute(lane, std::move(item));
    if (lane == ServeLane::kStream) queue_.StreamServiceDone();
  }
}

void Server::Execute(ServeLane lane, QueuedRequest item) {
  const auto& lane_metrics = obs::ServeLaneMetricsFor(ServeLaneName(lane));
  lane_metrics.queue_depth->Set(static_cast<double>(queue_.depth(lane)));
  ServeResponse response;
  try {
    response = ExecuteLocked(lane, item);
  } catch (const std::exception& e) {
    response = ServeResponse::Error(
        item.request.id, Status::Internal(std::string("worker: ") + e.what()));
  }
  const double latency =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    item.enqueue_time)
          .count();
  lane_metrics.latency_seconds->Observe(latency);
  if (response.outcome == ServeOutcome::kOk) {
    lane_metrics.completed->Increment();
    completed_[LaneIndex(lane)].fetch_add(1, std::memory_order_relaxed);
  } else {
    lane_metrics.errors->Increment();
    errors_[LaneIndex(lane)].fetch_add(1, std::memory_order_relaxed);
  }
  item.callback(response);
}

ServeResponse Server::ExecuteLocked(ServeLane /*lane*/,
                                    const QueuedRequest& item) {
  Status fault = ProbeFault(kSiteWorker);
  if (!fault.ok()) {
    obs::GetServeMetrics().fault_rejects->Increment();
    return ServeResponse::Error(item.request.id, std::move(fault));
  }
  switch (item.request.verb) {
    case ServeVerb::kSolve:
      return DoSolve(item);
    case ServeVerb::kFeed:
      return DoFeed(item.request);
    case ServeVerb::kFinish:
      return DoFinish(item.request);
    case ServeVerb::kSubscribe:
      return DoSubscribe(item.request);
    case ServeVerb::kUnsubscribe:
      return DoUnsubscribe(item.request);
    case ServeVerb::kEmissions:
      return DoEmissions(item.request);
    default:
      return ServeResponse::Error(
          item.request.id,
          Status::Internal("inline verb reached the queue"));
  }
}

ServeResponse Server::DoSolve(const QueuedRequest& item) {
  const ServeRequest& req = item.request;
  if (config_.service_floor_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(config_.service_floor_ms));
  }
  const int start = std::min(std::max(item.ladder_start, 0), 2);
  if (start > 0) {
    pre_degraded_.fetch_add(1, std::memory_order_relaxed);
    obs::ServePreDegradedFor(LadderStartName(start)).Increment();
  }
  UniformLambda request_model(req.lambda > 0.0 ? req.lambda : config_.lambda);
  const CoverageModel& model =
      req.lambda > 0.0 ? static_cast<const CoverageModel&>(request_model)
                       : static_cast<const CoverageModel&>(model_);
  DegradeOutcome outcome =
      ladders_[start]->SolveDegrading(inst_, model, item.deadline);
  admission_.RecordBatchServiceSeconds(outcome.elapsed_seconds +
                                       config_.service_floor_ms * 1e-3);
  std::string body;
  AppendKvS(&body, "rung", outcome.rung);
  AppendKv(&body, "rung_index",
           static_cast<uint64_t>(start) + outcome.rung_index);
  AppendKv(&body, "cover", outcome.cover.size());
  AppendKv(&body, "degraded", outcome.degraded || start > 0 ? 1 : 0);
  AppendKv(&body, "pre_degraded", static_cast<uint64_t>(start));
  AppendKvF(&body, "elapsed_ms", outcome.elapsed_seconds * 1e3);
  return ServeResponse::Ok(req.id, std::move(body));
}

ServeResponse Server::DoFeed(const ServeRequest& req) {
  const PostId num_posts = static_cast<PostId>(inst_.num_posts());
  const PostId begin = cursor_.load(std::memory_order_relaxed);
  const PostId end = static_cast<PostId>(
      std::min<uint64_t>(static_cast<uint64_t>(begin) + req.posts, num_posts));
  if (config_.tenant_mode) {
    Status status = tenants_->RunUntil(end);
    if (!status.ok()) return ServeResponse::Error(req.id, std::move(status));
    cursor_.store(end, std::memory_order_relaxed);
    std::string body;
    AppendKv(&body, "delivered", end - begin);
    AppendKv(&body, "cursor", end);
    return ServeResponse::Ok(req.id, std::move(body));
  }
  for (PostId p = begin; p < end; ++p) {
    processor_->AdvanceTo(inst_.value(p));
    processor_->OnArrival(p);
  }
  cursor_.store(end, std::memory_order_relaxed);
  emitted_.store(processor_->emissions().size(), std::memory_order_relaxed);
  std::string body;
  AppendKv(&body, "delivered", end - begin);
  AppendKv(&body, "cursor", end);
  AppendKv(&body, "emitted", emitted_.load(std::memory_order_relaxed));
  return ServeResponse::Ok(req.id, std::move(body));
}

ServeResponse Server::DoFinish(const ServeRequest& req) {
  if (config_.tenant_mode) {
    tenants_->Finish();
    std::string body;
    AppendKv(&body, "cursor", cursor_.load(std::memory_order_relaxed));
    return ServeResponse::Ok(req.id, std::move(body));
  }
  processor_->Finish();
  emitted_.store(processor_->emissions().size(), std::memory_order_relaxed);
  std::string body;
  AppendKv(&body, "emitted", emitted_.load(std::memory_order_relaxed));
  return ServeResponse::Ok(req.id, std::move(body));
}

ServeResponse Server::DoSubscribe(const ServeRequest& req) {
  if (!config_.tenant_mode) {
    return ServeResponse::Error(
        req.id,
        Status::FailedPrecondition("subscribe requires tenant mode "
                                   "(--max-tenants > 0)"));
  }
  const size_t cap = config_.admission.max_tenants;
  if (cap > 0 && tenants_->active_tenants() >= cap) {
    // Tenant admission: the fan-out cost of one more profile would
    // push the shared sweep past its provisioned budget.
    tenant_rejects_.fetch_add(1, std::memory_order_relaxed);
    obs::GetServeMetrics().tenant_rejects->Increment();
    return ServeResponse::Shed(
        req.id, "tenant_limit",
        std::max(admission_.EwmaBatchServiceMs(), 1.0) *
            static_cast<double>(cap));
  }
  Result<TenantId> tenant = tenants_->Subscribe(req.mask);
  if (!tenant.ok()) return ServeResponse::Error(req.id, tenant.status());
  tenant_count_.store(tenants_->active_tenants(), std::memory_order_relaxed);
  std::string body;
  AppendKv(&body, "tenant", *tenant);
  return ServeResponse::Ok(req.id, std::move(body));
}

ServeResponse Server::DoUnsubscribe(const ServeRequest& req) {
  if (!config_.tenant_mode) {
    return ServeResponse::Error(
        req.id, Status::FailedPrecondition("unsubscribe requires tenant mode"));
  }
  Status status = tenants_->Unsubscribe(req.tenant);
  if (!status.ok()) return ServeResponse::Error(req.id, std::move(status));
  tenant_count_.store(tenants_->active_tenants(), std::memory_order_relaxed);
  std::string body;
  AppendKv(&body, "tenants",
           static_cast<uint64_t>(tenants_->active_tenants()));
  return ServeResponse::Ok(req.id, std::move(body));
}

ServeResponse Server::DoEmissions(const ServeRequest& req) {
  std::string body;
  if (config_.tenant_mode) {
    if (req.tenant == kInvalidTenant) {
      return ServeResponse::Error(
          req.id,
          Status::InvalidArgument("emissions requires tenant=<id> in "
                                  "tenant mode"));
    }
    Result<std::vector<Emission>> emissions =
        tenants_->TenantEmissions(req.tenant);
    if (!emissions.ok()) {
      return ServeResponse::Error(req.id, emissions.status());
    }
    AppendKv(&body, "tenant", req.tenant);
    AppendKv(&body, "emitted", emissions->size());
    return ServeResponse::Ok(req.id, std::move(body));
  }
  AppendKv(&body, "emitted", processor_->emissions().size());
  return ServeResponse::Ok(req.id, std::move(body));
}

ServeResponse Server::HandleInline(const ServeRequest& req) {
  switch (req.verb) {
    case ServeVerb::kPing:
      return ServeResponse::Ok(req.id);
    case ServeVerb::kStats:
      return ServeResponse::Ok(req.id, FormatStats());
    case ServeVerb::kDrain: {
      Status status = Drain();
      if (!status.ok()) {
        return ServeResponse::Error(req.id, std::move(status));
      }
      std::string body;
      AppendKv(&body, "drained", 1);
      AppendKv(&body, "checkpoint",
               (!config_.tenant_mode && !config_.checkpoint_path.empty()) ? 1
                                                                          : 0);
      return ServeResponse::Ok(req.id, std::move(body));
    }
    default:
      return ServeResponse::Error(
          req.id, Status::Internal("non-inline verb in HandleInline"));
  }
}

Status Server::Drain() {
  draining_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(drain_mu_);
  if (drained_) return Status::OK();

  // Stop the workers after their in-flight request: Close makes
  // PopBlocking return false immediately, deliberately leaving queued
  // requests behind for the shed sweep below.
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  // Every request still queued was admitted, so it owes a response:
  // an explicit shed with a backoff hint, not silence.
  const double hint =
      std::max(admission_.EwmaBatchServiceMs(), 1.0) *
      static_cast<double>(config_.admission.batch_capacity);
  for (auto& [lane, item] : queue_.DrainAll()) {
    const auto& lane_metrics = obs::ServeLaneMetricsFor(ServeLaneName(lane));
    lane_metrics.shed->Increment();
    shed_[LaneIndex(lane)].fetch_add(1, std::memory_order_relaxed);
    drain_shed_.fetch_add(1, std::memory_order_relaxed);
    obs::GetServeMetrics().drain_shed->Increment();
    item.callback(
        ServeResponse::Shed(std::move(item.request.id), "draining", hint));
  }

  Status status = Status::OK();
  if (!config_.tenant_mode && !config_.checkpoint_path.empty()) {
    status = WriteStreamCheckpointToFile(
        *processor_, cursor_.load(std::memory_order_relaxed),
        config_.checkpoint_path);
  }
  obs::GetServeMetrics().drains->Increment();
  drained_ = true;
  return status;
}

ServeStatsSnapshot Server::Stats() const {
  ServeStatsSnapshot snap;
  for (int i = 0; i < 2; ++i) {
    snap.submitted[i] = submitted_[i].load(std::memory_order_relaxed);
    snap.admitted[i] = admitted_[i].load(std::memory_order_relaxed);
    snap.shed[i] = shed_[i].load(std::memory_order_relaxed);
    snap.completed[i] = completed_[i].load(std::memory_order_relaxed);
    snap.errors[i] = errors_[i].load(std::memory_order_relaxed);
  }
  snap.pre_degraded = pre_degraded_.load(std::memory_order_relaxed);
  snap.drain_shed = drain_shed_.load(std::memory_order_relaxed);
  snap.tenant_rejects = tenant_rejects_.load(std::memory_order_relaxed);
  snap.emitted = emitted_.load(std::memory_order_relaxed);
  snap.cursor = cursor_.load(std::memory_order_relaxed);
  snap.depth_stream = queue_.depth(ServeLane::kStream);
  snap.depth_batch = queue_.depth(ServeLane::kBatch);
  // Stats answers inline while workers may be mutating the engine, so
  // the tenant count comes from a mirror atomic maintained by the
  // (serialized) subscribe/unsubscribe workers, never from the engine.
  snap.tenants = tenant_count_.load(std::memory_order_relaxed);
  snap.draining = draining();
  snap.ewma_batch_ms = admission_.EwmaBatchServiceMs();
  return snap;
}

std::string Server::FormatStats() const {
  ServeStatsSnapshot snap = Stats();
  const int s = LaneIndex(ServeLane::kStream);
  const int b = LaneIndex(ServeLane::kBatch);
  std::string body;
  AppendKv(&body, "submitted", snap.submitted[s] + snap.submitted[b]);
  AppendKv(&body, "admitted", snap.admitted[s] + snap.admitted[b]);
  AppendKv(&body, "completed", snap.completed[s] + snap.completed[b]);
  AppendKv(&body, "shed_stream", snap.shed[s]);
  AppendKv(&body, "shed_batch", snap.shed[b]);
  AppendKv(&body, "errors", snap.errors[s] + snap.errors[b]);
  AppendKv(&body, "pre_degraded", snap.pre_degraded);
  AppendKv(&body, "drain_shed", snap.drain_shed);
  AppendKv(&body, "tenant_rejects", snap.tenant_rejects);
  AppendKv(&body, "depth_stream", snap.depth_stream);
  AppendKv(&body, "depth_batch", snap.depth_batch);
  AppendKv(&body, "cursor", snap.cursor);
  AppendKv(&body, "emitted", snap.emitted);
  AppendKv(&body, "tenants", snap.tenants);
  AppendKv(&body, "draining", snap.draining ? 1 : 0);
  AppendKvF(&body, "ewma_batch_ms", snap.ewma_batch_ms);
  return body;
}

}  // namespace mqd
