#ifndef MQD_SERVE_PROTOCOL_H_
#define MQD_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/types.h"
#include "stream/multi_tenant.h"
#include "util/result.h"
#include "util/status.h"

namespace mqd {

/// Wire protocol of the serving daemon (DESIGN.md §17). One request
/// per line, one response line per request, over stdin/stdout or a
/// TCP connection:
///
///   <id> <verb> [key=value]...
///
/// `id` is an opaque client token echoed back verbatim (responses may
/// arrive out of submission order; the id is how clients correlate).
/// Verbs:
///
///   solve [lambda=<f>] [budget_ms=<f>]   batch lane: degradation-
///                                        ladder re-solve of the full
///                                        instance
///   feed [posts=<n>]                     stream lane: deliver the
///                                        next n posts (default 64)
///                                        from the replay cursor
///   finish                               stream lane: fire remaining
///                                        deadlines (end of stream)
///   subscribe mask=<hex>                 stream lane (tenant mode):
///                                        admit a label-set profile
///   unsubscribe tenant=<id>              stream lane (tenant mode)
///   emissions [tenant=<id>]              stream lane: emission count
///   stats                                answered inline, never
///                                        queued (must respond under
///                                        overload)
///   ping                                 answered inline
///   drain                                graceful shutdown (handled
///                                        by the transport)
///
/// Responses:
///
///   <id> ok [key=value]...
///   <id> shed reason=<word> retry_after_ms=<f>
///   <id> error <Code>: <message>
enum class ServeVerb {
  kSolve,
  kFeed,
  kFinish,
  kSubscribe,
  kUnsubscribe,
  kEmissions,
  kStats,
  kPing,
  kDrain,
};

std::string_view ServeVerbName(ServeVerb verb);

/// The two priority lanes. Stream outranks batch on every pop: a
/// late report is a broken tau contract, a late re-solve is only a
/// stale digest.
enum class ServeLane { kStream = 0, kBatch = 1 };

std::string_view ServeLaneName(ServeLane lane);

/// Lane a verb is queued on. kStats/kPing/kDrain are inline verbs and
/// never reach a queue.
ServeLane LaneOfVerb(ServeVerb verb);
bool IsInlineVerb(ServeVerb verb);

struct ServeRequest {
  std::string id;
  ServeVerb verb = ServeVerb::kPing;
  /// solve: coverage threshold; < 0 = server default.
  double lambda = -1.0;
  /// solve: deadline budget; < 0 = server default, 0 = unbounded.
  double budget_ms = -1.0;
  /// feed: posts to deliver from the cursor.
  uint32_t posts = 64;
  /// subscribe: label mask (hex on the wire).
  LabelMask mask = 0;
  /// unsubscribe/emissions: tenant handle.
  TenantId tenant = kInvalidTenant;
};

/// Parses one request line. Rejects unknown verbs/keys, non-numeric,
/// NaN or infinite values, and missing required keys with
/// InvalidArgument (a malformed request must never reach a queue).
Result<ServeRequest> ParseServeRequest(std::string_view line);

enum class ServeOutcome { kOk, kShed, kError };

struct ServeResponse {
  std::string id = "-";
  ServeOutcome outcome = ServeOutcome::kOk;
  /// "key=value ..." payload for kOk (may be empty).
  std::string body;
  /// kShed: why, and the client-visible backoff hint.
  std::string shed_reason;
  double retry_after_ms = 0.0;
  /// kError: the typed failure.
  Status status;

  /// One response line, no trailing newline.
  std::string Format() const;

  static ServeResponse Ok(std::string id, std::string body = "");
  static ServeResponse Shed(std::string id, std::string_view reason,
                            double retry_after_ms);
  static ServeResponse Error(std::string id, Status status);
};

}  // namespace mqd

#endif  // MQD_SERVE_PROTOCOL_H_
