#ifndef MQD_SERVE_QUEUE_H_
#define MQD_SERVE_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "serve/protocol.h"
#include "util/deadline.h"

namespace mqd {

/// Exactly-once response delivery: every admitted request's callback
/// fires exactly once, from a worker (completion/error) or from the
/// drain sweep (shed).
using ServeResponseCallback = std::function<void(const ServeResponse&)>;

/// A request that passed admission, with everything the worker needs.
struct QueuedRequest {
  ServeRequest request;
  ServeResponseCallback callback;
  std::chrono::steady_clock::time_point enqueue_time{};
  /// Assigned at admission from the effective budget.
  Deadline deadline = Deadline::Unbounded();
  /// Batch pre-degrade: index of the first ladder rung admission
  /// allows (0 = full GreedySC ladder).
  int ladder_start = 0;
};

/// Two bounded FIFO lanes with strict priority: a waiting worker
/// always takes the stream lane first. Stream requests mutate the
/// single replay engine, so at most one is in service at a time
/// (`stream lane busy` flag, released via StreamServiceDone); batch
/// solves are read-only on the instance and run on all remaining
/// workers concurrently.
///
/// Bounded means TryPush fails (never blocks, never drops silently)
/// when a lane is at capacity — the caller turns that into a shed
/// response with a retry-after hint.
class RequestQueue {
 public:
  RequestQueue(size_t stream_capacity, size_t batch_capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// False when the lane is full or the queue is closed; the request
  /// is returned unmoved in that case so the caller can still respond.
  bool TryPush(ServeLane lane, QueuedRequest* item);

  /// Blocks until a request is available or the queue is closed.
  /// Returns false immediately once Close() has been called — queued
  /// requests are deliberately left behind for the drain sweep, so
  /// workers only finish what they already popped.
  bool PopBlocking(QueuedRequest* out, ServeLane* lane);

  /// Releases the stream-service slot after a popped stream request
  /// finishes executing.
  void StreamServiceDone();

  /// Rejects future pushes and wakes all poppers (they return false).
  void Close();

  /// Removes and returns everything still queued, in lane-priority
  /// then FIFO order. Only meaningful after Close().
  std::vector<std::pair<ServeLane, QueuedRequest>> DrainAll();

  size_t depth(ServeLane lane) const;
  size_t capacity(ServeLane lane) const {
    return lane == ServeLane::kStream ? stream_capacity_ : batch_capacity_;
  }
  bool closed() const;

 private:
  const size_t stream_capacity_;
  const size_t batch_capacity_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedRequest> stream_;
  std::deque<QueuedRequest> batch_;
  bool stream_in_service_ = false;
  bool closed_ = false;
};

}  // namespace mqd

#endif  // MQD_SERVE_QUEUE_H_
