#ifndef MQD_SERVE_ADMISSION_H_
#define MQD_SERVE_ADMISSION_H_

#include <atomic>
#include <cstddef>
#include <string_view>

#include "serve/protocol.h"

namespace mqd {

/// Queue-aware admission thresholds. All decisions are pure functions
/// of queue depth (not wall time), so overload behavior is
/// deterministic for a given submission order — the CI smoke relies
/// on that.
struct AdmissionConfig {
  /// Lane capacities. The stream lane is sized for bursts (arrivals
  /// are cheap to apply); the batch lane is sized for the solve
  /// service time.
  size_t stream_capacity = 4096;
  size_t batch_capacity = 32;
  /// Batch pre-degrade thresholds as fractions of batch_capacity:
  /// depth >= scan_plus_frac * cap starts the ladder at Scan+ (skip
  /// GreedySC), depth >= scan_frac * cap starts at Scan.
  double scan_plus_frac = 0.5;
  double scan_frac = 0.8;
  /// Default per-request deadline budget when the client sends none.
  /// 0 = unbounded.
  double default_budget_ms = 0.0;
  /// Tenant admission cap for subscribe (0 = unlimited).
  size_t max_tenants = 0;
  /// EWMA smoothing for the observed batch service time that feeds
  /// retry-after hints and the estimated-wait shed.
  double ewma_alpha = 0.2;
};

struct AdmissionDecision {
  bool admit = true;
  /// When !admit: "queue_full" | "deadline_unmeetable" | "draining".
  std::string_view shed_reason;
  /// Client backoff hint: roughly when a slot should free up.
  double retry_after_ms = 0.0;
  /// Batch lane: first allowed ladder rung (0 GreedySC, 1 Scan+,
  /// 2 Scan).
  int ladder_start = 0;
  /// Effective deadline budget assigned to the request (ms, 0 =
  /// unbounded).
  double budget_ms = 0.0;
};

/// Decides admit/shed/pre-degrade from the current lane depth.
/// Thread-safe; the service-time EWMA is a relaxed atomic (hints may
/// lag a beat — admission itself never depends on it unless a budget
/// makes the estimated wait provably unmeetable).
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  AdmissionDecision Decide(ServeLane lane, size_t queue_depth,
                           double requested_budget_ms, bool draining) const;

  /// Workers report each completed batch solve.
  void RecordBatchServiceSeconds(double seconds);
  double EwmaBatchServiceMs() const;

  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  size_t scan_plus_depth_;
  size_t scan_depth_;
  std::atomic<double> ewma_service_ms_{0.0};
};

}  // namespace mqd

#endif  // MQD_SERVE_ADMISSION_H_
