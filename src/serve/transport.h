#ifndef MQD_SERVE_TRANSPORT_H_
#define MQD_SERVE_TRANSPORT_H_

#include <iosfwd>

#include "serve/server.h"

namespace mqd {

/// Stdin/stdout framing: one request line in, one response line out
/// (order of responses follows completion, not submission — clients
/// correlate by id). Returns after a `drain` request or EOF; either
/// way the server is drained before returning, so every admitted
/// request has been answered. A pipelined `drain` line acts as a
/// barrier: this client's earlier requests complete before the drain
/// is submitted. An armed "serve.accept" fault rejects the affected
/// line with an error response instead of killing the loop.
Status ServeStdio(Server* server, std::istream& in, std::ostream& out);

/// TCP framing on 127.0.0.1:`port` (0 = ephemeral), same line
/// protocol per connection. The bound port is announced on `announce`
/// as "serving on 127.0.0.1:<port>". Accept loop runs until a client
/// sends `drain`; an armed "serve.accept" fault sheds the incoming
/// connection (closed after an error line) — one connection blast
/// radius, the listener survives.
Status ServeTcp(Server* server, int port, std::ostream& announce);

}  // namespace mqd

#endif  // MQD_SERVE_TRANSPORT_H_
