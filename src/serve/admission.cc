#include "serve/admission.h"

#include <algorithm>
#include <cmath>

namespace mqd {
namespace {

// Floor for retry-after hints before the EWMA warms up: claiming
// retry_after_ms=0 on a shed would invite an immediate hot retry.
constexpr double kColdServiceMs = 1.0;

}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {
  const double cap = static_cast<double>(config_.batch_capacity);
  scan_plus_depth_ = static_cast<size_t>(
      std::ceil(std::clamp(config_.scan_plus_frac, 0.0, 1.0) * cap));
  scan_depth_ = static_cast<size_t>(
      std::ceil(std::clamp(config_.scan_frac, 0.0, 1.0) * cap));
  scan_plus_depth_ = std::max<size_t>(scan_plus_depth_, 1);
  scan_depth_ = std::max(scan_depth_, scan_plus_depth_);
}

AdmissionDecision AdmissionController::Decide(ServeLane lane,
                                              size_t queue_depth,
                                              double requested_budget_ms,
                                              bool draining) const {
  AdmissionDecision d;
  d.budget_ms = requested_budget_ms >= 0.0 ? requested_budget_ms
                                           : config_.default_budget_ms;
  const double service_ms = std::max(EwmaBatchServiceMs(), kColdServiceMs);
  if (draining) {
    d.admit = false;
    d.shed_reason = "draining";
    // No slot will ever free up here; hint one full queue's worth so
    // clients back off long enough to find the replacement process.
    d.retry_after_ms = static_cast<double>(config_.batch_capacity) * service_ms;
    return d;
  }
  const size_t capacity = lane == ServeLane::kStream
                              ? config_.stream_capacity
                              : config_.batch_capacity;
  if (queue_depth >= capacity) {
    d.admit = false;
    d.shed_reason = "queue_full";
    d.retry_after_ms = static_cast<double>(queue_depth) * service_ms;
    return d;
  }
  if (lane == ServeLane::kBatch) {
    // Pre-degrade: the deeper the queue, the cheaper the rung the
    // solve is allowed to start at.
    if (queue_depth >= scan_depth_) {
      d.ladder_start = 2;
    } else if (queue_depth >= scan_plus_depth_) {
      d.ladder_start = 1;
    }
    // With a finite budget, shed requests whose estimated queue wait
    // already exceeds it: they would only burn a worker slot to
    // return a trivial cover.
    if (d.budget_ms > 0.0) {
      const double est_wait_ms = static_cast<double>(queue_depth) * service_ms;
      if (est_wait_ms > d.budget_ms) {
        d.admit = false;
        d.shed_reason = "deadline_unmeetable";
        d.retry_after_ms = est_wait_ms;
        return d;
      }
    }
  }
  return d;
}

void AdmissionController::RecordBatchServiceSeconds(double seconds) {
  const double sample_ms = seconds * 1e3;
  double prev = ewma_service_ms_.load(std::memory_order_relaxed);
  double next;
  do {
    next = prev == 0.0
               ? sample_ms
               : prev + config_.ewma_alpha * (sample_ms - prev);
  } while (!ewma_service_ms_.compare_exchange_weak(
      prev, next, std::memory_order_relaxed));
}

double AdmissionController::EwmaBatchServiceMs() const {
  return ewma_service_ms_.load(std::memory_order_relaxed);
}

}  // namespace mqd
