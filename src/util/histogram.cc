#include "util/histogram.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace mqd {

LinearBuckets::LinearBuckets(double lo, double hi, size_t num_buckets)
    : lo_(lo), hi_(hi), num_buckets_(num_buckets) {
  MQD_CHECK(num_buckets >= 1);
  MQD_CHECK(lo < hi);
}

size_t LinearBuckets::BucketOf(double value) const {
  if (value < lo_) return 0;
  if (value >= hi_) return num_buckets_ - 1;
  const double fraction = (value - lo_) / (hi_ - lo_);
  return std::min(num_buckets_ - 1,
                  static_cast<size_t>(fraction *
                                      static_cast<double>(num_buckets_)));
}

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : spec_(lo, hi, num_buckets), buckets_(num_buckets, 0) {}

void Histogram::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[spec_.BucketOf(value)];
}

double Histogram::Quantile(double q) const {
  MQD_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (static_cast<double>(seen) >= target) {
      return spec_.midpoint(b);
    }
  }
  return spec_.hi();
}

std::string Histogram::ToString(size_t bar_width) const {
  std::string out;
  uint64_t peak = 1;
  for (uint64_t b : buckets_) peak = std::max(peak, b);
  for (size_t b = 0; b < buckets_.size(); ++b) {
    const size_t bar = static_cast<size_t>(
        static_cast<double>(buckets_[b]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    out += StrFormat("[%10s, %10s) %-*s %llu\n",
                     FormatDouble(spec_.lower_bound(b), 2).c_str(),
                     FormatDouble(spec_.upper_bound(b), 2).c_str(),
                     static_cast<int>(bar_width),
                     std::string(bar, '#').c_str(),
                     static_cast<unsigned long long>(buckets_[b]));
  }
  return out;
}

}  // namespace mqd
