#ifndef MQD_UTIL_STRING_UTIL_H_
#define MQD_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mqd {

/// Splits `input` on any occurrence of `delim`, optionally keeping
/// empty fields.
std::vector<std::string> Split(std::string_view input, char delim,
                               bool keep_empty = false);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// ASCII lower-casing (sufficient for our synthetic corpora).
std::string ToLower(std::string_view input);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `digits` significant decimals, trimming
/// trailing zeros ("1.25", "3", "0.004").
std::string FormatDouble(double value, int digits = 4);

/// Human-friendly duration from seconds ("45s", "10m", "2h").
std::string FormatDurationSeconds(double seconds);

}  // namespace mqd

#endif  // MQD_UTIL_STRING_UTIL_H_
