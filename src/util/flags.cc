#include "util/flags.h"

#include <cstdlib>

#include "util/string_util.h"

namespace mqd {

void FlagParser::Define(const std::string& name,
                        const std::string& default_value,
                        const std::string& help) {
  flags_[name] = Flag{default_value, default_value, help, false};
  order_.push_back(name);
}

void FlagParser::DefineBool(const std::string& name, bool default_value,
                            const std::string& help) {
  const std::string v = default_value ? "true" : "false";
  flags_[name] = Flag{v, v, help, true};
  order_.push_back(name);
}

Status FlagParser::Parse(const std::vector<std::string>& args) {
  positional_.clear();
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (it->second.is_bool) {
      it->second.value = has_value ? value : "true";
      if (it->second.value != "true" && it->second.value != "false") {
        return Status::InvalidArgument("--" + name +
                                       " expects true/false");
      }
      continue;
    }
    if (!has_value) {
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument("--" + name + " needs a value");
      }
      value = args[++i];
    }
    it->second.value = value;
  }
  return Status::OK();
}

std::string FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? "" : it->second.value;
}

Result<int64_t> FlagParser::GetInt(const std::string& name) const {
  const std::string value = GetString(name);
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + name + " is not an integer: " +
                                   value);
  }
  return static_cast<int64_t>(v);
}

Result<double> FlagParser::GetDouble(const std::string& name) const {
  const std::string value = GetString(name);
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + name + " is not a number: " +
                                   value);
  }
  return v;
}

bool FlagParser::GetBool(const std::string& name) const {
  return GetString(name) == "true";
}

std::string FlagParser::Help() const {
  std::string out;
  for (const std::string& name : order_) {
    const Flag& flag = flags_.at(name);
    out += StrFormat("  --%-22s %s (default: %s)\n", name.c_str(),
                     flag.help.c_str(), flag.default_value.c_str());
  }
  return out;
}

}  // namespace mqd
