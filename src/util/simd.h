#ifndef MQD_UTIL_SIMD_H_
#define MQD_UTIL_SIMD_H_

#include <string_view>

namespace mqd::simd {

/// Instruction-set tier the kernel layer (core/kernels.h) dispatches
/// to. Decided once per process: the `MQD_SIMD` environment variable
/// (`scalar` or `avx2`) wins when set and satisfiable, otherwise the
/// widest tier the CPU supports. Every kernel has a scalar
/// implementation whose results are bit-identical to the vector one,
/// so the tier is a pure performance knob — covers, emission times
/// and certified bounds do not depend on it (tests/simd_kernel_test.cc
/// enforces this).
enum class Level {
  kScalar,
  kAvx2,
};

/// The tier dispatched kernels run at. First call reads MQD_SIMD and
/// probes the CPU; later calls return the cached decision.
Level Active();

/// True when this binary carries AVX2 kernel bodies *and* the CPU can
/// run them. (A build without AVX2 codegen support reports false even
/// on AVX2 hardware.)
bool Avx2Available();

std::string_view LevelName(Level level);

/// Test-only: re-points the dispatch table at `level` (must be
/// available) so one process can run both tiers differentially.
/// Returns false — leaving dispatch untouched — when the level is not
/// runnable here. Not thread safe; call only from single-threaded
/// test setup.
bool ForceLevelForTest(Level level);

}  // namespace mqd::simd

#endif  // MQD_UTIL_SIMD_H_
