#ifndef MQD_UTIL_STATUS_H_
#define MQD_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mqd {

/// Status codes used across libmqd. Modeled after the Arrow/RocksDB
/// convention: functions that can fail return a Status (or Result<T>)
/// instead of throwing; exceptions are never used on hot paths.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kDeadlineExceeded,
  kCancelled,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (no
/// allocation); error states carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status from an expression to the caller.
#define MQD_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::mqd::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace mqd

#endif  // MQD_UTIL_STATUS_H_
