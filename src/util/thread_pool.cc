#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/timer.h"

namespace mqd {

namespace {

std::atomic<ThreadPoolObserver*> g_pool_observer{nullptr};

/// Which worker queue the current thread owns, or npos on non-pool
/// threads. Keyed per pool via the thread-local's pool pointer so a
/// worker of pool A submitting into pool B is treated as an external
/// producer there.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  size_t index = static_cast<size_t>(-1);
};
thread_local WorkerIdentity tls_worker;

}  // namespace

void SetThreadPoolObserver(ThreadPoolObserver* observer) {
  g_pool_observer.store(observer, std::memory_order_release);
}

ThreadPoolObserver* GetThreadPoolObserver() {
  return g_pool_observer.load(std::memory_order_acquire);
}

int ResolveNumThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_workers) {
  MQD_CHECK(num_workers >= 0) << "num_workers must be >= 0";
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [this] { return pending_ == 0; });
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ExecuteTask(const std::function<void()>& task) {
  // Uniform failure semantics across the inline (zero-worker) and
  // worker paths: the first exception -- from the task itself or from
  // an armed pool.task fault -- is captured, never propagated into
  // WorkerLoop (which would std::terminate) or the submitter.
  try {
    if (FaultInjector::Global().armed()) {
      Status injected = FaultInjector::Global().MaybeInject("pool.task");
      if (!injected.ok()) {
        throw std::runtime_error(injected.ToString());
      }
    }
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

std::exception_ptr ThreadPool::TakeFirstError() {
  std::lock_guard<std::mutex> lock(error_mu_);
  std::exception_ptr error = first_error_;
  first_error_ = nullptr;
  return error;
}

Status ThreadPool::TakeFirstErrorStatus() {
  std::exception_ptr error = TakeFirstError();
  if (!error) return Status::OK();
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("pool task failed: ") + e.what());
  } catch (...) {
    return Status::Internal("pool task failed with a non-exception");
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  ThreadPoolObserver* const observer = GetThreadPoolObserver();
  if (workers_.empty()) {
    // Inline execution still reports through the observer: "serial" is
    // a configuration of the same code path, including its metrics.
    if (observer != nullptr) {
      observer->OnTaskSubmitted(0);
      Stopwatch watch;
      ExecuteTask(task);
      observer->OnTaskDone(0, watch.ElapsedSeconds());
    } else {
      ExecuteTask(task);
    }
    return;
  }
  size_t target;
  if (tls_worker.pool == this) {
    target = tls_worker.index;
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             workers_.size();
  }
  {
    std::lock_guard<std::mutex> qlock(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(task));
  }
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = ++pending_;
  }
  if (observer != nullptr) observer->OnTaskSubmitted(depth);
  work_cv_.notify_one();
}

bool ThreadPool::PopTask(size_t preferred, std::function<void()>* task) {
  const size_t k = workers_.size();
  // Own queue from the back (LIFO: the task most recently pushed is
  // the cache-warmest)...
  if (preferred < k) {
    WorkerQueue& own = *workers_[preferred];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // ... then steal from siblings from the front (FIFO: take the
  // oldest, largest-granularity work first).
  for (size_t off = 0; off < k; ++off) {
    const size_t victim = (preferred + 1 + off) % k;
    if (victim == preferred) continue;
    WorkerQueue& q = *workers_[victim];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      *task = std::move(q.tasks.front());
      q.tasks.pop_front();
      if (ThreadPoolObserver* const observer = GetThreadPoolObserver()) {
        observer->OnTaskStolen();
      }
      return true;
    }
  }
  return false;
}

bool ThreadPool::TryRunOneTask() {
  if (workers_.empty()) return false;
  const size_t preferred = tls_worker.pool == this
                               ? tls_worker.index
                               : next_queue_.load(std::memory_order_relaxed) %
                                     workers_.size();
  std::function<void()> task;
  if (!PopTask(preferred, &task)) return false;
  ThreadPoolObserver* const observer = GetThreadPoolObserver();
  double seconds = 0.0;
  if (observer != nullptr) {
    Stopwatch watch;
    ExecuteTask(task);
    seconds = watch.ElapsedSeconds();
  } else {
    ExecuteTask(task);
  }
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = --pending_;
    if (pending_ == 0) drain_cv_.notify_all();
  }
  if (observer != nullptr) observer->OnTaskDone(depth, seconds);
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_worker = WorkerIdentity{this, index};
  for (;;) {
    std::function<void()> task;
    if (PopTask(index, &task)) {
      ThreadPoolObserver* const observer = GetThreadPoolObserver();
      double seconds = 0.0;
      if (observer != nullptr) {
        Stopwatch watch;
        ExecuteTask(task);
        seconds = watch.ElapsedSeconds();
      } else {
        ExecuteTask(task);
      }
      size_t depth;
      {
        std::lock_guard<std::mutex> lock(mu_);
        depth = --pending_;
        if (pending_ == 0) drain_cv_.notify_all();
      }
      if (observer != nullptr) observer->OnTaskDone(depth, seconds);
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_ && pending_ == 0) return;
    work_cv_.wait(lock, [this] { return stopping_ || pending_ > 0; });
    if (stopping_ && pending_ == 0) return;
  }
}

namespace {

/// Shared state of one ParallelFor call. Chunks are claimed by atomic
/// counter, so the partition of work across threads is dynamic but the
/// chunk -> index-range mapping is fixed by (n, grain) alone.
struct ParallelForState {
  size_t n = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t)>* body = nullptr;

  std::atomic<size_t> next_chunk{0};
  std::mutex mu;
  std::condition_variable done_cv;
  size_t chunks_done = 0;  // guarded by mu
  std::exception_ptr error;  // first failure, guarded by mu

  void RunChunks() {
    for (;;) {
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const size_t begin = c * grain;
      const size_t end = std::min(n, begin + grain);
      try {
        (*body)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (++chunks_done == num_chunks) done_cv.notify_all();
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                 const std::function<void(size_t begin, size_t end)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (n + grain - 1) / grain;
  if (pool == nullptr || pool->num_workers() == 0 || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      body(c * grain, std::min(n, (c + 1) * grain));
    }
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->body = &body;

  // One helper task per worker (capped by chunk count); the caller is
  // the final participant. Helpers that wake up late find next_chunk
  // exhausted and return immediately.
  const size_t helpers =
      std::min<size_t>(static_cast<size_t>(pool->num_workers()),
                       num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    pool->Submit([state] { state->RunChunks(); });
  }
  state->RunChunks();

  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(
        lock, [&] { return state->chunks_done == state->num_chunks; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace mqd
