// Stopwatch/TimeAccumulator are header-only; this TU anchors the
// module so every mqd_* library has at least one object file.
#include "util/timer.h"
