#include "util/fault_injection.h"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "util/string_util.h"

namespace mqd {

namespace {

/// SplitMix64 finalizer: decorrelates (seed, site, hit) into uniform
/// 64-bit noise. Deterministic across platforms.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashSite(std::string_view site) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// True iff hit `hit` of `site` fires under `seed` with probability p.
bool ShouldFire(uint64_t seed, std::string_view site, uint64_t hit, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const uint64_t noise = Mix(seed ^ Mix(HashSite(site) + hit));
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(noise >> 11) * (1.0 / 9007199254740992.0);
  return u < p;
}

void BusyWait(double seconds) {
  if (seconds <= 0.0) return;
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < until) {
  }
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* const injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  for (Site* site : sites_) {
    site->hits.store(0, std::memory_order_relaxed);
    site->fires.store(0, std::memory_order_relaxed);
  }
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  for (Site* site : sites_) delete site;
  sites_.clear();
}

void FaultInjector::SetFault(std::string_view site, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Site* existing = Find(site)) {
    existing->spec = spec;
    existing->hits.store(0, std::memory_order_relaxed);
    existing->fires.store(0, std::memory_order_relaxed);
    return;
  }
  Site* fresh = new Site();
  fresh->name = std::string(site);
  fresh->spec = spec;
  sites_.push_back(fresh);
}

namespace {

// Full-consumption finite strtod: "0.5junk", "nan", "inf" and "1e999"
// are all rejected, not partially accepted.
bool ParseFiniteDouble(std::string_view text, double* out) {
  const std::string buf(text);
  if (buf.empty()) return false;
  errno = 0;
  char* parse_end = nullptr;
  const double value = std::strtod(buf.c_str(), &parse_end);
  if (parse_end != buf.c_str() + buf.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

Status FaultInjector::ArmFromSpec(std::string_view spec, uint64_t seed) {
  // Fail closed: parse the whole spec first and apply it only if every
  // entry is valid. A mid-spec error must never leave earlier entries
  // armed (a partial chaos schedule is worse than none — tests would
  // silently exercise the wrong blast radius), so any previously armed
  // configuration is also dropped before reporting the error.
  Disarm();
  std::vector<std::pair<std::string, FaultSpec>> parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    // site:prob[:latency_ms][:throw]
    std::vector<std::string_view> parts;
    size_t p = 0;
    while (p <= entry.size()) {
      size_t colon = entry.find(':', p);
      if (colon == std::string_view::npos) colon = entry.size();
      parts.push_back(entry.substr(p, colon - p));
      p = colon + 1;
    }
    if (parts.size() < 2 || parts[0].empty()) {
      return Status::InvalidArgument(
          StrFormat("fault spec entry '%.*s': want site:prob[:latency_ms]"
                    "[:throw]",
                    static_cast<int>(entry.size()), entry.data()));
    }
    FaultSpec fault;
    if (!ParseFiniteDouble(parts[1], &fault.probability) ||
        fault.probability < 0.0 || fault.probability > 1.0) {
      return Status::InvalidArgument(
          StrFormat("fault spec '%.*s': probability must be a finite number "
                    "in [0,1]",
                    static_cast<int>(parts[1].size()), parts[1].data()));
    }
    size_t next = 2;
    if (next < parts.size() && parts[next] != "throw") {
      double latency_ms = 0.0;
      if (!ParseFiniteDouble(parts[next], &latency_ms) || latency_ms < 0.0) {
        return Status::InvalidArgument(
            StrFormat("fault spec '%.*s': bad latency_ms",
                      static_cast<int>(parts[next].size()),
                      parts[next].data()));
      }
      fault.latency_seconds = latency_ms / 1000.0;
      ++next;
    }
    if (next < parts.size()) {
      if (parts[next] != "throw") {
        return Status::InvalidArgument(StrFormat(
            "fault spec: unexpected trailing field '%.*s'",
            static_cast<int>(parts[next].size()), parts[next].data()));
      }
      fault.throw_exception = true;
      ++next;
    }
    if (next != parts.size()) {
      return Status::InvalidArgument("fault spec: too many fields");
    }
    parsed.emplace_back(std::string(parts[0]), fault);
  }
  for (const auto& [site, fault] : parsed) {
    SetFault(site, fault);
  }
  Arm(seed);
  return Status::OK();
}

Status FaultInjector::ArmFromEnv() {
  const char* spec = std::getenv("MQD_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return Status::OK();
  uint64_t seed = 0;
  if (const char* seed_env = std::getenv("MQD_FAULT_SEED")) {
    seed = std::strtoull(seed_env, nullptr, 10);
  }
  return ArmFromSpec(spec, seed);
}

Status FaultInjector::MaybeInject(std::string_view site) {
  if (!armed()) return Status::OK();
  // Copy the spec out under the lock, then fire outside it: the busy
  // wait can be milliseconds, and a concurrent Disarm may delete the
  // Site the moment the lock drops.
  FaultSpec spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A Disarm may have raced the armed() fast check above (e.g. a
    // late thread-pool helper task probing pool.task while the chaos
    // harness re-arms the next schedule).
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
    Site* entry = Find(site);
    if (entry == nullptr) return Status::OK();
    const uint64_t hit = entry->hits.fetch_add(1, std::memory_order_relaxed);
    if (!ShouldFire(seed_, site, hit, entry->spec.probability)) {
      return Status::OK();
    }
    entry->fires.fetch_add(1, std::memory_order_relaxed);
    spec = entry->spec;
  }
  BusyWait(spec.latency_seconds);
  const std::string what = "injected fault at " + std::string(site);
  if (spec.throw_exception) throw std::runtime_error(what);
  if (spec.code == StatusCode::kOk) return Status::OK();
  return Status(spec.code, what);
}

uint64_t FaultInjector::Hits(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Site* entry = Find(site);
  return entry == nullptr ? 0
                          : entry->hits.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::Fires(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Site* entry = Find(site);
  return entry == nullptr ? 0
                          : entry->fires.load(std::memory_order_relaxed);
}

FaultInjector::Site* FaultInjector::Find(std::string_view site) {
  for (Site* entry : sites_) {
    if (entry->name == site) return entry;
  }
  return nullptr;
}

const FaultInjector::Site* FaultInjector::Find(std::string_view site) const {
  for (const Site* entry : sites_) {
    if (entry->name == site) return entry;
  }
  return nullptr;
}

}  // namespace mqd
