#ifndef MQD_UTIL_HISTOGRAM_H_
#define MQD_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mqd {

/// The one linear bucketing scheme of the codebase: `num_buckets`
/// equal-width buckets over [lo, hi), values outside the range
/// saturating into the edge buckets. Histogram, the obs layer's
/// LatencyHistogram, the cover-stats bucket distributions and the
/// digest timeline all share these boundaries, so a value lands in the
/// same bucket no matter which component counted it.
class LinearBuckets {
 public:
  /// `num_buckets` >= 1; `lo < hi`.
  LinearBuckets(double lo, double hi, size_t num_buckets);

  /// Saturating bucket index of `value`.
  size_t BucketOf(double value) const;

  size_t num_buckets() const { return num_buckets_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double width() const {
    return (hi_ - lo_) / static_cast<double>(num_buckets_);
  }
  double lower_bound(size_t bucket) const {
    return lo_ + static_cast<double>(bucket) * width();
  }
  double upper_bound(size_t bucket) const {
    return lo_ + static_cast<double>(bucket + 1) * width();
  }
  double midpoint(size_t bucket) const {
    return lo_ + (static_cast<double>(bucket) + 0.5) * width();
  }

  bool operator==(const LinearBuckets&) const = default;

 private:
  double lo_;
  double hi_;
  size_t num_buckets_;
};

/// Fixed-bucket linear histogram over [lo, hi); values outside the
/// range land in saturated edge buckets. Used for delay and
/// solution-size distributions in the evaluation harness. Not thread
/// safe; the concurrent counterpart is obs::LatencyHistogram.
class Histogram {
 public:
  /// `num_buckets` >= 1; `lo < hi`.
  Histogram(double lo, double hi, size_t num_buckets);

  void Add(double value);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Approximate quantile from the bucket midpoints; q in [0, 1].
  double Quantile(double q) const;

  uint64_t bucket_count(size_t bucket) const { return buckets_[bucket]; }
  size_t num_buckets() const { return buckets_.size(); }

  /// Multi-line ASCII rendering ("[lo, hi) ####### n").
  std::string ToString(size_t bar_width = 40) const;

  const LinearBuckets& bucket_spec() const { return spec_; }

 private:
  LinearBuckets spec_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mqd

#endif  // MQD_UTIL_HISTOGRAM_H_
