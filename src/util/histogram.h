#ifndef MQD_UTIL_HISTOGRAM_H_
#define MQD_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mqd {

/// Fixed-bucket linear histogram over [lo, hi); values outside the
/// range land in saturated edge buckets. Used for delay and
/// solution-size distributions in the evaluation harness.
class Histogram {
 public:
  /// `num_buckets` >= 1; `lo < hi`.
  Histogram(double lo, double hi, size_t num_buckets);

  void Add(double value);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Approximate quantile from the bucket midpoints; q in [0, 1].
  double Quantile(double q) const;

  uint64_t bucket_count(size_t bucket) const { return buckets_[bucket]; }
  size_t num_buckets() const { return buckets_.size(); }

  /// Multi-line ASCII rendering ("[lo, hi) ####### n").
  std::string ToString(size_t bar_width = 40) const;

 private:
  size_t BucketOf(double value) const;

  double lo_;
  double hi_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mqd

#endif  // MQD_UTIL_HISTOGRAM_H_
