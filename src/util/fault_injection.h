#ifndef MQD_UTIL_FAULT_INJECTION_H_
#define MQD_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mqd {

/// One configured fault at a named site.
struct FaultSpec {
  /// Probability in [0, 1] that a pass through the site fires.
  double probability = 0.0;
  /// Busy-wait latency injected on fire (seconds); 0 = none. Applied
  /// before the error, mimicking a slow-then-failing dependency.
  double latency_seconds = 0.0;
  /// Error returned on fire. kOk means latency-only faults.
  StatusCode code = StatusCode::kInternal;
  /// Fire as a thrown std::runtime_error instead of a Status — models
  /// misbehaving third-party code (the thread-pool contract tests use
  /// this).
  bool throw_exception = false;
};

/// Deterministic, seeded fault-injection registry.
///
/// Sites are string literals ("io.read_instance", "pool.task", ...)
/// compiled into production code via MQD_FAULT_POINT. Disarmed — the
/// default — a site costs one relaxed atomic load and a predicted
/// branch; nothing else in the process changes, so production binaries
/// carry the sites for free.
///
/// Built-in sites: io.read_instance, index.load, stream.replay,
/// pool.task, io.write_checkpoint (probed between the flushed tmp
/// write and the rename in WriteStreamCheckpointToFile; a fire models
/// a torn write — the previous on-disk snapshot survives), the
/// multi-tenant trio tenant.fanout (probed on each per-cluster
/// delivery; a fire quarantines that cluster only — see
/// stream/multi_tenant.h), tenant.shard (probed once per sweep shard;
/// a fire quarantines every cluster in that one shard — the sweep's
/// blast-radius unit) and tenant.evict (probed in EvictTenant; a fire
/// returns the fault and leaves the tenant subscribed), and the
/// serving-daemon trio serve.accept (transport framing; a fire
/// rejects the line/connection, the loop survives), serve.queue
/// (probed in Server::Submit before admission; a fire answers the
/// request with the fault) and serve.worker (probed at execution
/// start; a fire fails that one request, the worker survives — throw
/// specs included).
///
/// Armed, firing is a pure function of (seed, site, hit index): the
/// k-th pass through a site either always fires or never fires for a
/// given seed. Replaying a schedule therefore reproduces the exact
/// same faults, which is what lets the chaos harness shrink failures.
///
/// Thread safety: fully safe. Arm/Disarm/SetFault may race
/// MaybeInject from other threads (e.g. a late thread-pool helper
/// task probing pool.task while the test harness re-arms the next
/// schedule); the armed path serializes on an internal mutex, and the
/// disarmed fast path stays a single relaxed atomic load. Hit
/// counters are atomic so concurrent passes through a site each get a
/// distinct hit index.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms the registry with a seed. Faults fire only while armed.
  void Arm(uint64_t seed);
  /// Disarms and clears all sites and counters.
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Configures `spec` for `site`, replacing any previous spec.
  void SetFault(std::string_view site, const FaultSpec& spec);

  /// Parses a comma-separated schedule "site:prob[:latency_ms][:throw]"
  /// (e.g. "io.read_instance:0.5,pool.task:0.1:5:throw") and arms with
  /// `seed`. Used by the MQD_FAULTS / MQD_FAULT_SEED environment
  /// variables and the CLI --faults flag. Fails closed: numbers must
  /// be finite and fully consumed (no "nan", "inf" or trailing
  /// garbage), and a malformed entry anywhere leaves the registry
  /// disarmed with zero sites configured — never a partial spec.
  Status ArmFromSpec(std::string_view spec, uint64_t seed);

  /// Reads MQD_FAULTS / MQD_FAULT_SEED and arms if the former is set.
  /// Called once from main()s that opt in. Returns OK when unset.
  Status ArmFromEnv();

  /// The injection point body. OK when disarmed, the site is
  /// unconfigured, or this hit does not fire. May throw when the spec
  /// says so.
  Status MaybeInject(std::string_view site);

  /// Total times a site was passed / fired since arming (testing).
  uint64_t Hits(std::string_view site) const;
  uint64_t Fires(std::string_view site) const;

 private:
  FaultInjector() = default;

  struct Site {
    std::string name;
    FaultSpec spec;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fires{0};
  };

  Site* Find(std::string_view site);
  const Site* Find(std::string_view site) const;

  std::atomic<bool> armed_{false};
  // Guards seed_ and sites_ (including the Site objects' lifetime):
  // Disarm deletes them, and an in-flight MaybeInject on another
  // thread must never observe a deleted entry. Only the armed path
  // locks; the disarmed fast path is the armed_ load alone.
  mutable std::mutex mu_;
  uint64_t seed_ = 0;
  std::vector<Site*> sites_;
};

/// Injection point: returns the fault Status from the enclosing
/// function when the site fires. Usable in any Status- or
/// Result-returning function (Result converts from Status).
#define MQD_FAULT_POINT(site)                                          \
  do {                                                                 \
    if (::mqd::FaultInjector::Global().armed()) {                      \
      ::mqd::Status _fault =                                           \
          ::mqd::FaultInjector::Global().MaybeInject(site);            \
      if (!_fault.ok()) return _fault;                                 \
    }                                                                  \
  } while (false)

}  // namespace mqd

#endif  // MQD_UTIL_FAULT_INJECTION_H_
