#ifndef MQD_UTIL_THREAD_POOL_H_
#define MQD_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace mqd {

/// Resolves a user-facing thread-count knob: 0 means "all hardware
/// threads", anything else is clamped to >= 1.
int ResolveNumThreads(int requested);

/// Instrumentation hook for ThreadPool. The util layer cannot depend
/// on the obs layer, so pools publish their events through this
/// interface and obs/stack_metrics installs the registry-backed
/// implementation. Methods are called concurrently from pool and
/// submitter threads and must be thread safe.
class ThreadPoolObserver {
 public:
  virtual ~ThreadPoolObserver() = default;

  /// A task was enqueued; `queue_depth` is the pool's pending count
  /// (queued + running) right after the submit.
  virtual void OnTaskSubmitted(size_t queue_depth) = 0;

  /// A task was taken from another worker's queue.
  virtual void OnTaskStolen() = 0;

  /// A task finished; `queue_depth` is the pending count right after,
  /// `seconds` its execution time.
  virtual void OnTaskDone(size_t queue_depth, double seconds) = 0;
};

/// Installs (or, with nullptr, detaches) the process-wide observer.
/// Borrowed pointer: the observer must outlive every pool, so install
/// a long-lived object near process start. When none is installed the
/// per-task overhead is a single relaxed atomic load.
void SetThreadPoolObserver(ThreadPoolObserver* observer);
ThreadPoolObserver* GetThreadPoolObserver();

/// A work-stealing thread pool. Each worker owns a deque: it pops its
/// own tasks LIFO (cache-warm) and steals FIFO from siblings when
/// empty, so bursty submitters cannot starve the other workers.
///
/// The pool is deliberately small-surface: fire-and-forget Submit plus
/// the ParallelFor helper below. Completion tracking and ordering are
/// the caller's concern (see BatchSolver for the canonical pattern).
/// A task that throws does NOT crash the process: the pool captures
/// the first exception and keeps running; callers that care collect it
/// with TakeFirstError()/TakeFirstErrorStatus() after draining.
/// (ParallelFor bodies are caught per chunk by ParallelFor itself and
/// rethrown on the caller, as before.)
///
/// A pool may have zero workers, in which case Submit runs the task
/// inline on the calling thread; this makes "serial" a configuration
/// of the same code path rather than a separate branch.
///
/// Destruction drains: queued tasks are finished, not dropped, before
/// the workers join. Submitting from inside a task during teardown is
/// allowed (the drain loop re-checks the queues).
class ThreadPool {
 public:
  /// `num_workers` background threads (>= 0).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Called from a worker thread, the task lands on
  /// that worker's own deque (LIFO locality); otherwise queues are fed
  /// round-robin.
  void Submit(std::function<void()> task);

  /// Runs one queued task on the calling thread if any is available
  /// (own queue first when called from a worker, then stealing).
  /// Returns false when every queue was empty. Lets blocked callers
  /// help instead of idling.
  bool TryRunOneTask();

  /// Takes (and clears) the first exception thrown by a Submit task
  /// since the last call; nullptr when none. Tasks submitted through
  /// ParallelFor are not reported here (ParallelFor rethrows its own
  /// first chunk error).
  std::exception_ptr TakeFirstError();

  /// TakeFirstError() converted to Status: OK when no task failed,
  /// kInternal carrying the exception message otherwise.
  Status TakeFirstErrorStatus();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t index);
  bool PopTask(size_t preferred, std::function<void()>* task);
  /// Runs `task` with observer timing, the pool.task fault-injection
  /// site, and first-exception capture. Never throws.
  void ExecuteTask(const std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::mutex error_mu_;
  std::exception_ptr first_error_;    // guarded by error_mu_
  std::condition_variable work_cv_;   // workers wait here for tasks
  std::condition_variable drain_cv_;  // destructor waits here
  size_t pending_ = 0;                // queued + running tasks
  std::atomic<size_t> next_queue_{0};
  bool stopping_ = false;
};

/// Splits [0, n) into `grain`-sized chunks and runs `body(begin, end)`
/// over them on the pool, with the calling thread participating: the
/// caller claims chunks like any worker, so the call cannot deadlock
/// even when issued from inside a pool task (nested parallelism), and
/// a null/zero-worker pool degenerates to a plain serial loop.
///
/// Chunk boundaries depend only on (n, grain) -- never on the number
/// of threads -- so any per-chunk results a caller accumulates by
/// chunk index are deterministic. Returns after every chunk finished.
/// The first exception a chunk throws is rethrown on the caller after
/// the loop completes.
void ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                 const std::function<void(size_t begin, size_t end)>& body);

}  // namespace mqd

#endif  // MQD_UTIL_THREAD_POOL_H_
