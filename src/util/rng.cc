#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace mqd {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  MQD_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MQD_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  have_cached_normal_ = true;
  return mean + stddev * u * factor;
}

double Rng::Exponential(double rate) {
  MQD_DCHECK(rate > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

int64_t Rng::Poisson(double mean) {
  MQD_DCHECK(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double x = Normal(mean, std::sqrt(mean));
    return x < 0.0 ? 0 : static_cast<int64_t>(std::llround(x));
  }
  // Knuth inversion.
  const double limit = std::exp(-mean);
  double prod = NextDouble();
  int64_t n = 0;
  while (prod > limit) {
    ++n;
    prod *= NextDouble();
  }
  return n;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  MQD_CHECK(n > 0);
  pmf_.resize(n);
  cdf_.resize(n);
  double norm = 0.0;
  for (size_t i = 0; i < n; ++i) {
    pmf_[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    norm += pmf_[i];
  }
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    pmf_[i] /= norm;
    acc += pmf_[i];
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;  // guard against accumulated rounding error
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  // Binary search for the first cdf entry >= u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::Pmf(size_t rank) const {
  MQD_DCHECK(rank < pmf_.size());
  return pmf_[rank];
}

}  // namespace mqd
