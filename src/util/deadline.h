#ifndef MQD_UTIL_DEADLINE_H_
#define MQD_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <limits>

#include "util/status.h"

namespace mqd {

/// Cooperative cancellation flag. A producer (request handler, watchdog,
/// test) calls Cancel(); workers poll cancelled() at loop boundaries and
/// unwind with StatusCode::kCancelled. Thread safe; cancellation is
/// one-way and sticky.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A time budget plus optional cancellation, passed by const reference
/// down the solve/stream call stacks. Copyable and cheap: one
/// steady-clock time point and two pointers.
///
/// The default-constructed Deadline is unbounded: expired() is a single
/// branch with no clock read, so budget-aware code paths cost nothing
/// when no budget is set (the PR 3/4 hot paths stay bit-identical).
class Deadline {
 public:
  /// Unbounded, non-cancellable.
  Deadline() = default;

  static Deadline Unbounded() { return Deadline(); }

  /// Expires `seconds` from now on the steady clock. Negative or zero
  /// budgets produce an already-expired deadline; NaN is treated as
  /// unbounded (a NaN budget is "no budget", not "no time").
  static Deadline AfterSeconds(double seconds);

  /// Attaches a cancellation token (borrowed; must outlive the
  /// deadline). Composes with the time budget: expired() is true when
  /// either trips.
  Deadline WithCancelToken(const CancelToken* token) const {
    Deadline d = *this;
    d.cancel_ = token;
    return d;
  }

  bool bounded() const { return bounded_; }
  bool cancellable() const { return cancel_ != nullptr; }

  /// True when nothing can ever expire this deadline.
  bool unbounded() const { return !bounded_ && cancel_ == nullptr; }

  /// Clock read (when bounded) + cancellation probe.
  bool expired() const {
    if (cancel_ != nullptr && cancel_->cancelled()) return true;
    return bounded_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Seconds left; +inf when unbounded, <= 0 when expired.
  double remaining_seconds() const;

  /// OK while live; kCancelled / kDeadlineExceeded once tripped.
  /// `what` names the interrupted operation in the message.
  Status Check(const char* what) const;

 private:
  bool bounded_ = false;
  std::chrono::steady_clock::time_point at_{};
  const CancelToken* cancel_ = nullptr;
};

/// Amortizes Deadline::expired() for tight loops: the clock is only
/// read every `stride`-th call, and never when the deadline is
/// unbounded. Once tripped it stays tripped, so callers can hoist the
/// expensive unwind out of the loop body.
///
/// Pick the stride so one stride's worth of work costs well under the
/// budget's resolution; the solvers use per-outer-iteration checkers
/// (stride 1, one clock read per greedy round / label sweep) and
/// strided checkers inside enumeration loops.
class DeadlineChecker {
 public:
  explicit DeadlineChecker(const Deadline& deadline, uint32_t stride = 1)
      : deadline_(deadline),
        stride_(stride == 0 ? 1 : stride),
        active_(!deadline.unbounded()) {}

  /// One poll. Unbounded deadlines cost a single predictable branch.
  bool Expired() {
    if (!active_ || tripped_) return tripped_;
    if (++count_ < stride_) return false;
    count_ = 0;
    tripped_ = deadline_.expired();
    return tripped_;
  }

  /// Status form of Expired() for MQD_RETURN_NOT_OK-style call sites.
  Status Check(const char* what) {
    if (!Expired()) return Status::OK();
    return deadline_.Check(what);
  }

 private:
  const Deadline& deadline_;
  uint32_t stride_;
  uint32_t count_ = 0;
  bool active_;
  bool tripped_ = false;
};

}  // namespace mqd

#endif  // MQD_UTIL_DEADLINE_H_
