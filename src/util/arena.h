#ifndef MQD_UTIL_ARENA_H_
#define MQD_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <memory_resource>
#include <span>
#include <type_traits>
#include <vector>

namespace mqd {

/// Bump allocator for repeated solves (the obstack idiom: one arena
/// owns every transient solver structure, freed wholesale). Alloc is
/// a pointer bump inside the current block; Reset rewinds to empty
/// while *keeping* the high-water block, so a steady-state workload —
/// BatchSolver jobs, degradation rungs re-solving the same instance,
/// stream replays — stops touching malloc entirely after the first
/// few cycles. Stats counters are compiled in unconditionally (they
/// are two adds per alloc) and feed mqd_arena_* metrics through the
/// ArenaObserver hook (util cannot depend on obs; see
/// ThreadPoolObserver for the same pattern).
///
/// Not thread safe: one Arena belongs to one solver/processor/thread
/// (SolveScratch::ThreadLocal() hands each thread its own).
class Arena {
 public:
  struct Stats {
    size_t bytes_held = 0;    // capacity across all retained blocks
    size_t bytes_live = 0;    // allocated since the last Reset
    size_t bytes_peak = 0;    // max bytes_live ever observed
    uint64_t resets = 0;      // Reset calls
    uint64_t block_allocs = 0;  // trips to malloc (growth events)

    /// Elementwise accumulation for fleets of arenas (the multi-tenant
    /// engine's per-cluster representatives): bytes_peak sums too, so
    /// the aggregate reads as the fleet's total high-water budget.
    Stats& operator+=(const Stats& other) {
      bytes_held += other.bytes_held;
      bytes_live += other.bytes_live;
      bytes_peak += other.bytes_peak;
      resets += other.resets;
      block_allocs += other.block_allocs;
      return *this;
    }
  };

  explicit Arena(size_t initial_block_bytes = kDefaultBlockBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized storage aligned to `align`
  /// (which must be a power of two <= alignof(std::max_align_t)... or
  /// larger; any power of two works, the block itself is max-aligned
  /// and the bump pointer rounds up).
  void* Alloc(size_t bytes, size_t align);

  /// Typed convenience: `n` default-initialized Ts (trivial types are
  /// left uninitialized, matching vector-free hot-path usage).
  template <typename T>
  std::span<T> AllocSpan(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena spans are never destroyed element-wise");
    T* p = static_cast<T*>(Alloc(n * sizeof(T), alignof(T)));
    if constexpr (!std::is_trivially_default_constructible_v<T>) {
      for (size_t i = 0; i < n; ++i) new (p + i) T();
    }
    return {p, n};
  }

  /// Zero-filled typed span.
  template <typename T>
  std::span<T> AllocZeroedSpan(size_t n);

  /// Discards every live allocation (no destructors run — arena types
  /// must be trivially destructible or externally destroyed first).
  /// The retained capacity is coalesced into one block sized to the
  /// high-water mark, so the next cycle bump-allocates out of a
  /// single contiguous region and steady state performs zero mallocs.
  void Reset();

  const Stats& stats() const { return stats_; }

  static constexpr size_t kDefaultBlockBytes = 1 << 16;

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size;
  };

  void* AllocSlow(size_t bytes, size_t align);

  std::byte* ptr_ = nullptr;
  std::byte* end_ = nullptr;
  std::vector<Block> blocks_;
  size_t active_block_ = 0;  // block ptr_/end_ point into
  size_t initial_block_bytes_;
  Stats stats_;
};

template <typename T>
std::span<T> Arena::AllocZeroedSpan(size_t n) {
  // n == 0 on a fresh arena yields a null (empty) span; memset's
  // pointer argument is declared non-null, so skip it.
  if (n == 0) return {};
  std::span<T> s = AllocSpan<T>(n);
  std::memset(static_cast<void*>(s.data()), 0, n * sizeof(T));
  return s;
}

/// Observer hook for arena telemetry; obs/stack_metrics installs a
/// registry-backed implementation (InstallArenaMetrics) that exports
/// mqd_arena_bytes_peak / mqd_arena_resets_total /
/// mqd_arena_block_allocs_total. Callbacks fire on the allocating
/// thread and must be cheap and thread safe.
class ArenaObserver {
 public:
  virtual ~ArenaObserver() = default;
  /// A Reset ran; `bytes_peak` is the arena's lifetime high-water.
  virtual void OnReset(size_t bytes_peak) = 0;
  /// The arena grew by one freshly malloc'd block of `bytes`.
  virtual void OnBlockAlloc(size_t bytes) = 0;
};

void SetArenaObserver(ArenaObserver* observer);
ArenaObserver* GetArenaObserver();

/// std::pmr adapter so standard containers (the stream processors'
/// carried-window mirrors) can live on an Arena. Deallocate is a
/// no-op — memory is reclaimed wholesale by Arena::Reset or never.
class ArenaResource final : public std::pmr::memory_resource {
 public:
  explicit ArenaResource(Arena* arena) : arena_(arena) {}

 private:
  void* do_allocate(size_t bytes, size_t align) override {
    return arena_->Alloc(bytes, align);
  }
  void do_deallocate(void*, size_t, size_t) override {}
  bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  Arena* arena_;
};

}  // namespace mqd

#endif  // MQD_UTIL_ARENA_H_
