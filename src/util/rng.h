#ifndef MQD_UTIL_RNG_H_
#define MQD_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mqd {

/// Deterministic, seedable PRNG (xoshiro256**) plus the distributions
/// the workload generators need. Not thread-safe; create one per
/// thread. We deliberately avoid std::mt19937 + std::*_distribution so
/// that generated workloads are bit-identical across standard library
/// implementations.
class Rng {
 public:
  /// Seeds the four-word state via SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift
  /// rejection method; bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal deviate (Marsaglia polar method).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential deviate with the given rate (mean 1/rate); rate > 0.
  double Exponential(double rate);

  /// Poisson deviate; uses inversion for small mean, normal
  /// approximation with rounding for mean > 64.
  int64_t Poisson(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Zipf(s) sampler over ranks {0, ..., n-1}; rank 0 is the most
/// popular. Precomputes the CDF (O(n) space) for O(log n) sampling,
/// which is the right trade-off for our vocabulary/topic sizes.
class ZipfSampler {
 public:
  /// `n` items with exponent `s` (s = 0 degenerates to uniform).
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of a given rank.
  double Pmf(size_t rank) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  std::vector<double> pmf_;
};

}  // namespace mqd

#endif  // MQD_UTIL_RNG_H_
