#ifndef MQD_UTIL_TIMER_H_
#define MQD_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace mqd {

/// Wall-clock stopwatch over std::chrono::steady_clock, used by the
/// benchmark harness to report per-post execution times.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates multiple timed sections (e.g. algorithm invocations
/// across label sets) and reports totals/means.
class TimeAccumulator {
 public:
  void Add(double seconds) {
    total_ += seconds;
    ++count_;
  }

  double total_seconds() const { return total_; }
  uint64_t count() const { return count_; }
  double mean_seconds() const { return count_ == 0 ? 0.0 : total_ / count_; }

  void Reset() {
    total_ = 0.0;
    count_ = 0;
  }

 private:
  double total_ = 0.0;
  uint64_t count_ = 0;
};

}  // namespace mqd

#endif  // MQD_UTIL_TIMER_H_
