#include "util/logging.h"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace mqd {
namespace internal {

namespace {

LogLevel g_level = LogLevel::kInfo;
std::once_flag g_level_init;
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

void InitFromEnv() {
  if (const char* env = std::getenv("MQD_LOG_LEVEL")) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 4) g_level = static_cast<LogLevel>(v);
  }
}

}  // namespace

LogLevel GetLogLevel() {
  std::call_once(g_level_init, InitFromEnv);
  return g_level;
}

void SetLogLevel(LogLevel level) {
  std::call_once(g_level_init, InitFromEnv);
  g_level = level;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace mqd
