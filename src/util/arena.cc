#include "util/arena.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>

#include "util/logging.h"

namespace mqd {

namespace {

std::atomic<ArenaObserver*> g_arena_observer{nullptr};

uintptr_t AlignUp(uintptr_t n, size_t align) {
  return (n + align - 1) & ~(static_cast<uintptr_t>(align) - 1);
}

}  // namespace

void SetArenaObserver(ArenaObserver* observer) {
  g_arena_observer.store(observer, std::memory_order_release);
}

ArenaObserver* GetArenaObserver() {
  return g_arena_observer.load(std::memory_order_acquire);
}

Arena::Arena(size_t initial_block_bytes)
    : initial_block_bytes_(
          std::bit_ceil(std::max<size_t>(initial_block_bytes, 256))) {}

Arena::~Arena() = default;

void* Arena::Alloc(size_t bytes, size_t align) {
  MQD_DCHECK(std::has_single_bit(align));
  const uintptr_t cur = reinterpret_cast<uintptr_t>(ptr_);
  const uintptr_t aligned = AlignUp(cur, align);
  const uintptr_t end = reinterpret_cast<uintptr_t>(end_);
  if (aligned + bytes > end) return AllocSlow(bytes, align);
  stats_.bytes_live += (aligned - cur) + bytes;
  stats_.bytes_peak = std::max(stats_.bytes_peak, stats_.bytes_live);
  ptr_ = reinterpret_cast<std::byte*>(aligned + bytes);
  return reinterpret_cast<std::byte*>(aligned);
}

void* Arena::AllocSlow(size_t bytes, size_t align) {
  const size_t need = bytes + align;
  // Abandoning the current block's tail still counts toward the live
  // high-water mark (it is capacity this cycle consumed).
  stats_.bytes_live += static_cast<size_t>(end_ - ptr_);
  // Walk forward through retained blocks before growing: a Reset
  // rewinds to block zero but keeps the rest for reuse.
  while (active_block_ + 1 < blocks_.size()) {
    ++active_block_;
    Block& b = blocks_[active_block_];
    if (b.size >= need) {
      ptr_ = b.data.get();
      end_ = ptr_ + b.size;
      return Alloc(bytes, align);
    }
    stats_.bytes_live += b.size;
  }
  size_t grow =
      blocks_.empty() ? initial_block_bytes_ : blocks_.back().size * 2;
  while (grow < need) grow *= 2;
  blocks_.push_back(Block{std::make_unique<std::byte[]>(grow), grow});
  stats_.bytes_held += grow;
  ++stats_.block_allocs;
  if (ArenaObserver* obs = GetArenaObserver()) obs->OnBlockAlloc(grow);
  active_block_ = blocks_.size() - 1;
  ptr_ = blocks_.back().data.get();
  end_ = ptr_ + grow;
  return Alloc(bytes, align);
}

void Arena::Reset() {
  stats_.bytes_peak = std::max(stats_.bytes_peak, stats_.bytes_live);
  ++stats_.resets;
  if (blocks_.size() > 1) {
    // Coalesce: one block >= the total retained capacity, so future
    // cycles never leave block zero and never call malloc again.
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    const size_t grow = std::bit_ceil(total);
    blocks_.clear();
    blocks_.push_back(Block{std::make_unique<std::byte[]>(grow), grow});
    stats_.bytes_held = grow;
    ++stats_.block_allocs;
    if (ArenaObserver* obs = GetArenaObserver()) obs->OnBlockAlloc(grow);
  }
  active_block_ = 0;
  if (!blocks_.empty()) {
    ptr_ = blocks_[0].data.get();
    end_ = ptr_ + blocks_[0].size;
  }
  stats_.bytes_live = 0;
  if (ArenaObserver* obs = GetArenaObserver()) {
    obs->OnReset(stats_.bytes_peak);
  }
}

}  // namespace mqd
