#include "util/deadline.h"

#include <cmath>

#include "util/string_util.h"

namespace mqd {

Deadline Deadline::AfterSeconds(double seconds) {
  Deadline d;
  if (std::isnan(seconds)) return d;  // no budget
  d.bounded_ = true;
  if (std::isinf(seconds)) {
    d.at_ = std::chrono::steady_clock::time_point::max();
    return d;
  }
  d.at_ = std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(seconds));
  return d;
}

double Deadline::remaining_seconds() const {
  if (cancel_ != nullptr && cancel_->cancelled()) return 0.0;
  if (!bounded_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(at_ -
                                       std::chrono::steady_clock::now())
      .count();
}

Status Deadline::Check(const char* what) const {
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Status::Cancelled(StrFormat("%s: cancelled", what));
  }
  if (bounded_ && std::chrono::steady_clock::now() >= at_) {
    return Status::DeadlineExceeded(
        StrFormat("%s: deadline exceeded", what));
  }
  return Status::OK();
}

}  // namespace mqd
