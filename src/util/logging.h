#ifndef MQD_UTIL_LOGGING_H_
#define MQD_UTIL_LOGGING_H_

#include <sstream>
#include <string>

#include "util/status.h"

namespace mqd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal {

/// Minimum level that is emitted; default kInfo. Settable via
/// SetLogLevel or the MQD_LOG_LEVEL env var (0..4) at first use.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Stream-style log sink. Emits the accumulated message on
/// destruction; aborts the process for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// A sink that swallows everything (for disabled levels).
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define MQD_LOG_INTERNAL(level) \
  ::mqd::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define MQD_LOG(severity) MQD_LOG_INTERNAL(::mqd::LogLevel::k##severity)

/// Always-on invariant check; logs expression and aborts on failure.
#define MQD_CHECK(cond)                                            \
  if (!(cond))                                                     \
  MQD_LOG(Fatal) << "Check failed: " #cond " "

#define MQD_CHECK_OK(expr)                                    \
  do {                                                        \
    ::mqd::Status _st = (expr);                               \
    if (!_st.ok()) MQD_LOG(Fatal) << "Status not OK: " << _st.ToString(); \
  } while (false)

/// Debug-only invariant check (compiled out in NDEBUG builds).
#ifdef NDEBUG
#define MQD_DCHECK(cond) \
  while (false) MQD_CHECK(cond)
#else
#define MQD_DCHECK(cond) MQD_CHECK(cond)
#endif

}  // namespace mqd

#endif  // MQD_UTIL_LOGGING_H_
