#ifndef MQD_UTIL_FLAGS_H_
#define MQD_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace mqd {

/// Minimal command-line parser for the bundled tools:
/// `tool <command> [--flag value] [--flag=value] [--switch] args...`.
/// Unknown flags are errors (catching typos beats silently ignoring
/// them).
class FlagParser {
 public:
  /// Declares a flag with a default; declaration order is the help
  /// order.
  void Define(const std::string& name, const std::string& default_value,
              const std::string& help);
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);

  /// Parses argv after the command word. Fails on unknown flags or
  /// missing values.
  Status Parse(const std::vector<std::string>& args);

  /// Typed access (after Parse; falls back to the default otherwise).
  std::string GetString(const std::string& name) const;
  Result<int64_t> GetInt(const std::string& name) const;
  Result<double> GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Formatted flag help.
  std::string Help() const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
    bool is_bool = false;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace mqd

#endif  // MQD_UTIL_FLAGS_H_
