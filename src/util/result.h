#ifndef MQD_UTIL_RESULT_H_
#define MQD_UTIL_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "util/status.h"

namespace mqd {

/// A value-or-error holder in the spirit of arrow::Result /
/// absl::StatusOr. A Result is either a T or a non-OK Status; default
/// construction is not allowed.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status (failure). Constructing from an OK
  /// status is a programming error and aborts.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() when holding a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Accesses the value. Aborts (with the error printed) if not ok();
  /// call ok()/status() first on fallible paths.
  const T& value() const& {
    DieIfError();
    return std::get<T>(repr_);
  }
  T& value() & {
    DieIfError();
    return std::get<T>(repr_);
  }
  T&& value() && {
    DieIfError();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::cerr << "Result::value() on error: "
                << std::get<Status>(repr_).ToString() << "\n";
      std::abort();
    }
  }

  std::variant<T, Status> repr_;
};

/// Assigns the value of a Result expression to `lhs`, returning the
/// error status to the caller on failure.
#define MQD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define MQD_ASSIGN_OR_RETURN(lhs, expr) \
  MQD_ASSIGN_OR_RETURN_IMPL(MQD_CONCAT_(_mqd_result_, __LINE__), lhs, expr)

#define MQD_CONCAT_INNER_(a, b) a##b
#define MQD_CONCAT_(a, b) MQD_CONCAT_INNER_(a, b)

}  // namespace mqd

#endif  // MQD_UTIL_RESULT_H_
