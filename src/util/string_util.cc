#include "util/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace mqd {

std::vector<std::string> Split(std::string_view input, char delim,
                               bool keep_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= input.size()) {
    size_t end = input.find(delim, start);
    if (end == std::string_view::npos) end = input.size();
    std::string_view field = input.substr(start, end - start);
    if (keep_empty || !field.empty()) out.emplace_back(field);
    if (end == input.size()) break;
    start = end + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int digits) {
  if (!std::isfinite(value)) return value > 0 ? "inf" : (value < 0 ? "-inf" : "nan");
  std::string s = StrFormat("%.*f", digits, value);
  // Trim trailing zeros and a dangling dot.
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  return s;
}

std::string FormatDurationSeconds(double seconds) {
  if (seconds < 60.0) return FormatDouble(seconds, 2) + "s";
  if (seconds < 3600.0) return FormatDouble(seconds / 60.0, 2) + "m";
  return FormatDouble(seconds / 3600.0, 2) + "h";
}

}  // namespace mqd
