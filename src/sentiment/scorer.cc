#include "sentiment/scorer.h"

#include <string>
#include <vector>

#include "sentiment/lexicon.h"
#include "text/tokenizer.h"

namespace mqd {

namespace {

bool IsNegator(const std::string& token) {
  return token == "not" || token == "no" || token == "never" ||
         token == "dont" || token == "cant" || token == "wont" ||
         token == "isnt" || token == "wasnt" || token == "didnt";
}

}  // namespace

double SentimentScorer::Score(std::string_view text) const {
  // Keep stopwords: negators ("not", "no") are function words the
  // default pipeline would drop.
  TokenizerOptions options;
  options.remove_stopwords = false;
  options.min_token_length = 2;
  const Tokenizer tokenizer(options);
  const std::vector<std::string> tokens = tokenizer.Tokenize(text);

  int pos = 0;
  int neg = 0;
  bool negated = false;
  for (const std::string& token : tokens) {
    if (IsNegator(token)) {
      negated = true;
      continue;
    }
    int polarity = WordPolarity(token);
    if (polarity != 0) {
      if (negated) polarity = -polarity;
      if (polarity > 0) {
        ++pos;
      } else {
        ++neg;
      }
    }
    negated = false;
  }
  if (pos + neg == 0) return 0.0;
  return static_cast<double>(pos - neg) / static_cast<double>(pos + neg);
}

}  // namespace mqd
