#ifndef MQD_SENTIMENT_LEXICON_H_
#define MQD_SENTIMENT_LEXICON_H_

#include <string_view>
#include <vector>

namespace mqd {

/// Polarity of a single (lowercased) word: +1 positive, -1 negative,
/// 0 neutral/unknown. Backed by a built-in ~200-word opinion lexicon.
int WordPolarity(std::string_view word);

/// The built-in word lists (exposed so the tweet generator can plant
/// sentiment-bearing words with known ground truth).
const std::vector<std::string_view>& PositiveWords();
const std::vector<std::string_view>& NegativeWords();

}  // namespace mqd

#endif  // MQD_SENTIMENT_LEXICON_H_
