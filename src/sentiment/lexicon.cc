#include "sentiment/lexicon.h"

#include <string>
#include <unordered_map>

namespace mqd {

namespace {

const std::vector<std::string_view>* BuildPositive() {
  return new std::vector<std::string_view>{
      "good",      "great",      "excellent", "amazing",    "awesome",
      "love",      "loved",      "wonderful", "fantastic",  "happy",
      "glad",      "positive",   "win",       "winning",    "won",
      "best",      "better",     "strong",    "stronger",   "success",
      "successful", "beautiful", "brilliant", "celebrate",  "cheer",
      "congrats",  "delight",    "delighted", "enjoy",      "enjoyed",
      "excited",   "exciting",   "favorite",  "gain",       "gains",
      "hope",      "hopeful",    "improve",   "improved",   "improving",
      "impressive", "inspiring", "nice",      "optimistic", "outstanding",
      "perfect",   "pleased",    "progress",  "proud",      "rally",
      "recover",   "recovery",   "rise",      "rising",     "safe",
      "smile",     "soar",       "soaring",   "solid",      "support",
      "surge",     "thankful",   "thanks",    "thrilled",   "triumph",
      "up",        "upbeat",     "victory",   "vibrant",    "warm",
      "welcome",   "well",       "wow",       "yay",        "booming",
      "breakthrough", "bullish", "calm",      "charming",   "clean",
      "confident", "courage",    "dream",     "eager",      "effective",
      "elegant",   "energetic",  "fair",      "fresh",      "friendly",
      "fun",       "generous",   "genius",    "grateful",   "healthy"};
}

const std::vector<std::string_view>* BuildNegative() {
  return new std::vector<std::string_view>{
      "bad",        "terrible",  "awful",      "horrible",  "hate",
      "hated",      "sad",       "angry",      "negative",  "lose",
      "losing",     "lost",      "worst",      "worse",     "weak",
      "weaker",     "fail",      "failed",     "failure",   "crisis",
      "crash",      "crashed",   "fear",       "fears",     "afraid",
      "alarm",      "alarming",  "anxious",    "attack",    "bearish",
      "bleak",      "broke",     "broken",     "collapse",  "concern",
      "concerned",  "corrupt",   "damage",     "damaged",   "danger",
      "dangerous",  "dead",      "decline",    "declined",  "deficit",
      "desperate",  "disaster",  "disappointed", "down",    "downturn",
      "drop",       "dropped",   "gloomy",     "grim",      "hurt",
      "injured",    "kill",      "killed",     "lawsuit",   "layoff",
      "layoffs",    "mess",      "miss",       "missed",    "outrage",
      "pain",       "painful",   "panic",      "plunge",    "plunged",
      "poor",       "problem",   "problems",   "recession", "riot",
      "risk",       "risky",     "scandal",    "scare",     "shock",
      "shocking",   "slump",     "sorry",      "struggle",  "struggling",
      "tragedy",    "tragic",    "trouble",    "ugly",      "unhappy",
      "unrest",     "violence",  "violent",    "warning",   "worried",
      "worry"};
}

const std::unordered_map<std::string, int>& PolarityMap() {
  static const std::unordered_map<std::string, int>* const kMap = [] {
    auto* map = new std::unordered_map<std::string, int>();
    for (std::string_view w : PositiveWords()) map->emplace(w, 1);
    for (std::string_view w : NegativeWords()) map->emplace(w, -1);
    return map;
  }();
  return *kMap;
}

}  // namespace

const std::vector<std::string_view>& PositiveWords() {
  static const std::vector<std::string_view>* const kWords = BuildPositive();
  return *kWords;
}

const std::vector<std::string_view>& NegativeWords() {
  static const std::vector<std::string_view>* const kWords = BuildNegative();
  return *kWords;
}

int WordPolarity(std::string_view word) {
  const auto& map = PolarityMap();
  auto it = map.find(std::string(word));
  return it == map.end() ? 0 : it->second;
}

}  // namespace mqd
