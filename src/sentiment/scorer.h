#ifndef MQD_SENTIMENT_SCORER_H_
#define MQD_SENTIMENT_SCORER_H_

#include <string_view>

namespace mqd {

/// Lexicon-based sentiment polarity scorer. Sentiment is one of the
/// two diversity dimensions the paper highlights (Sections 1, 2, 6);
/// the score below is the post's value F(P) on that dimension.
///
/// score = (pos - neg) / (pos + neg) in [-1, 1], 0 when no opinion
/// words occur. A negator ("not", "no", "never", "n't"-collapsed
/// forms) directly before an opinion word flips its polarity.
class SentimentScorer {
 public:
  /// Scores raw post text (tokenizes internally, keeping negators).
  double Score(std::string_view text) const;
};

}  // namespace mqd

#endif  // MQD_SENTIMENT_SCORER_H_
