#ifndef MQD_SPATIAL_GEO_SOLVER_H_
#define MQD_SPATIAL_GEO_SOLVER_H_

#include <cstdint>
#include <vector>

#include "spatial/geo_instance.h"
#include "util/result.h"

namespace mqd {

/// Spatiotemporal coverage thresholds: a post lambda-covers a label of
/// another post when both carry the label, their times differ by at
/// most lambda_seconds AND their locations are within lambda_km.
struct GeoCoverage {
  double lambda_seconds = 3600.0;
  double lambda_km = 50.0;
};

/// Does `coverer` cover label `a` of `coveree`? Requires the label on
/// both posts.
bool GeoCovers(const GeoInstance& inst, const GeoCoverage& cov,
               PostId coverer, PostId coveree);

struct UncoveredGeoPair {
  PostId post;
  LabelId label;
  bool operator==(const UncoveredGeoPair&) const = default;
};

/// Uncovered (post, label) pairs of `selected` (empty = valid cover).
std::vector<UncoveredGeoPair> FindUncoveredGeoPairs(
    const GeoInstance& inst, const GeoCoverage& cov,
    const std::vector<PostId>& selected);

/// GreedySC generalized to the 2-D coverage relation. The per-label
/// Scan sweep does NOT generalize (2-D coverage regions are not
/// intervals), so the set-cover greedy is the workhorse here — with
/// the same ln(|P||L|) guarantee, since the reduction to set cover
/// never used one-dimensionality.
Result<std::vector<PostId>> SolveGeoGreedy(const GeoInstance& inst,
                                           const GeoCoverage& cov);

/// Exact branch-and-bound reference for tiny spatiotemporal
/// instances (branches on the uncovered pair with fewest coverers,
/// incumbent seeded by the greedy).
Result<std::vector<PostId>> SolveGeoExact(const GeoInstance& inst,
                                          const GeoCoverage& cov,
                                          uint64_t max_nodes = 20'000'000);

}  // namespace mqd

#endif  // MQD_SPATIAL_GEO_SOLVER_H_
