#ifndef MQD_SPATIAL_GEO_H_
#define MQD_SPATIAL_GEO_H_

namespace mqd {

/// A WGS84 coordinate, degrees.
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;
};

/// Great-circle distance in kilometers (haversine formula, mean earth
/// radius 6371 km — plenty for coverage radii of city scale).
double HaversineKm(const GeoPoint& a, const GeoPoint& b);

/// Degrees of latitude spanning `km` kilometers (used to bound
/// candidate scans; 1 degree latitude ~ 111.2 km everywhere).
double KmToLatDegrees(double km);

}  // namespace mqd

#endif  // MQD_SPATIAL_GEO_H_
