#include "spatial/geo_instance.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace mqd {

std::span<const PostId> GeoInstance::LabelPostsInTimeRange(
    LabelId a, double lo, double hi) const {
  const std::span<const double> times = label_times(a);
  auto first = std::lower_bound(times.begin(), times.end(), lo);
  auto last = std::upper_bound(first, times.end(), hi);
  return {label_ids_.data() + label_offsets_[a] +
              static_cast<size_t>(first - times.begin()),
          static_cast<size_t>(last - first)};
}

GeoInstanceBuilder::GeoInstanceBuilder(int num_labels)
    : num_labels_(num_labels) {
  MQD_CHECK(num_labels >= 1 && num_labels <= kMaxLabels);
}

GeoInstanceBuilder& GeoInstanceBuilder::Add(double time, GeoPoint location,
                                            LabelMask labels,
                                            uint64_t external_id) {
  posts_.push_back(GeoPost{time, location, labels, external_id});
  return *this;
}

Result<GeoInstance> GeoInstanceBuilder::Build() {
  const LabelMask universe =
      num_labels_ == kMaxLabels ? ~LabelMask{0}
                                : (LabelMask{1} << num_labels_) - 1;
  for (size_t i = 0; i < posts_.size(); ++i) {
    if (posts_[i].labels == 0) {
      return Status::InvalidArgument(
          StrFormat("geo post %zu has an empty label set", i));
    }
    if ((posts_[i].labels & ~universe) != 0) {
      return Status::InvalidArgument(
          StrFormat("geo post %zu has labels outside the universe", i));
    }
    if (posts_[i].location.lat < -90.0 || posts_[i].location.lat > 90.0 ||
        posts_[i].location.lon < -180.0 ||
        posts_[i].location.lon > 180.0) {
      return Status::InvalidArgument(
          StrFormat("geo post %zu has an invalid coordinate", i));
    }
  }
  std::stable_sort(
      posts_.begin(), posts_.end(),
      [](const GeoPost& a, const GeoPost& b) { return a.time < b.time; });

  GeoInstance inst;
  inst.posts_ = std::move(posts_);
  posts_.clear();
  inst.posts_.shrink_to_fit();
  inst.num_labels_ = num_labels_;

  // CSR counting-sort build, mirroring InstanceBuilder::Build.
  const size_t num_labels = static_cast<size_t>(num_labels_);
  inst.label_offsets_.assign(num_labels + 1, 0);
  for (const GeoPost& p : inst.posts_) {
    ForEachLabel(p.labels,
                 [&](LabelId a) { ++inst.label_offsets_[a + 1]; });
    inst.max_labels_per_post_ =
        std::max(inst.max_labels_per_post_, MaskCount(p.labels));
  }
  for (size_t a = 0; a < num_labels; ++a) {
    inst.label_offsets_[a + 1] += inst.label_offsets_[a];
  }
  const size_t num_pairs = inst.label_offsets_[num_labels];
  inst.label_ids_.resize(num_pairs);
  inst.label_times_.resize(num_pairs);
  std::vector<size_t> cursor(inst.label_offsets_.begin(),
                             inst.label_offsets_.end() - 1);
  for (PostId i = 0; i < inst.posts_.size(); ++i) {
    ForEachLabel(inst.posts_[i].labels, [&](LabelId a) {
      const size_t at = cursor[a]++;
      inst.label_ids_[at] = i;
      inst.label_times_[at] = inst.posts_[i].time;
    });
  }
  return inst;
}

}  // namespace mqd
