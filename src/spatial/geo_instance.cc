#include "spatial/geo_instance.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace mqd {

std::span<const PostId> GeoInstance::LabelPostsInTimeRange(
    LabelId a, double lo, double hi) const {
  const std::vector<PostId>& list = label_lists_[a];
  auto first = std::lower_bound(
      list.begin(), list.end(), lo,
      [this](PostId id, double x) { return posts_[id].time < x; });
  auto last = std::upper_bound(
      first, list.end(), hi,
      [this](double x, PostId id) { return x < posts_[id].time; });
  return {list.data() + (first - list.begin()),
          static_cast<size_t>(last - first)};
}

GeoInstanceBuilder::GeoInstanceBuilder(int num_labels)
    : num_labels_(num_labels) {
  MQD_CHECK(num_labels >= 1 && num_labels <= kMaxLabels);
}

GeoInstanceBuilder& GeoInstanceBuilder::Add(double time, GeoPoint location,
                                            LabelMask labels,
                                            uint64_t external_id) {
  posts_.push_back(GeoPost{time, location, labels, external_id});
  return *this;
}

Result<GeoInstance> GeoInstanceBuilder::Build() {
  const LabelMask universe =
      num_labels_ == kMaxLabels ? ~LabelMask{0}
                                : (LabelMask{1} << num_labels_) - 1;
  for (size_t i = 0; i < posts_.size(); ++i) {
    if (posts_[i].labels == 0) {
      return Status::InvalidArgument(
          StrFormat("geo post %zu has an empty label set", i));
    }
    if ((posts_[i].labels & ~universe) != 0) {
      return Status::InvalidArgument(
          StrFormat("geo post %zu has labels outside the universe", i));
    }
    if (posts_[i].location.lat < -90.0 || posts_[i].location.lat > 90.0 ||
        posts_[i].location.lon < -180.0 ||
        posts_[i].location.lon > 180.0) {
      return Status::InvalidArgument(
          StrFormat("geo post %zu has an invalid coordinate", i));
    }
  }
  std::stable_sort(
      posts_.begin(), posts_.end(),
      [](const GeoPost& a, const GeoPost& b) { return a.time < b.time; });

  GeoInstance inst;
  inst.posts_ = std::move(posts_);
  posts_.clear();
  inst.num_labels_ = num_labels_;
  inst.label_lists_.assign(static_cast<size_t>(num_labels_), {});
  for (PostId i = 0; i < inst.posts_.size(); ++i) {
    ForEachLabel(inst.posts_[i].labels,
                 [&](LabelId a) { inst.label_lists_[a].push_back(i); });
    inst.max_labels_per_post_ = std::max(
        inst.max_labels_per_post_, MaskCount(inst.posts_[i].labels));
    inst.num_pairs_ +=
        static_cast<size_t>(MaskCount(inst.posts_[i].labels));
  }
  return inst;
}

}  // namespace mqd
