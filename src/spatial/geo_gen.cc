#include "spatial/geo_gen.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace mqd {

Result<GeoInstance> GenerateGeoInstance(const GeoGenConfig& config) {
  if (config.num_labels < 1 || config.num_labels > kMaxLabels) {
    return Status::InvalidArgument("num_labels out of range");
  }
  if (config.duration <= 0.0 || config.posts_per_minute <= 0.0 ||
      config.num_cities < 1) {
    return Status::InvalidArgument("bad geo generator config");
  }
  if (config.overlap_rate < 1.0 ||
      config.overlap_rate > config.num_labels) {
    return Status::InvalidArgument("overlap_rate out of range");
  }

  Rng rng(config.seed);
  // Scatter city centers over a continent-sized box away from the
  // poles (so the lon/lat distortion stays mild).
  std::vector<GeoPoint> cities(static_cast<size_t>(config.num_cities));
  for (GeoPoint& city : cities) {
    city.lat = rng.UniformDouble(25.0, 48.0);
    city.lon = rng.UniformDouble(-120.0, -70.0);
  }
  const ZipfSampler city_popularity(cities.size(), config.city_skew);
  const ZipfSampler label_popularity(
      static_cast<size_t>(config.num_labels), 0.7);

  const double sigma_lat = KmToLatDegrees(config.city_sigma_km);
  const size_t total = static_cast<size_t>(std::max<int64_t>(
      1, rng.Poisson(config.duration / 60.0 * config.posts_per_minute)));
  const double p_extra =
      config.num_labels > 1
          ? std::clamp((config.overlap_rate - 1.0) /
                           (config.num_labels - 1),
                       0.0, 1.0)
          : 0.0;

  GeoInstanceBuilder builder(config.num_labels);
  for (size_t i = 0; i < total; ++i) {
    const GeoPoint& city = cities[city_popularity.Sample(&rng)];
    GeoPoint where;
    where.lat =
        std::clamp(city.lat + rng.Normal(0.0, sigma_lat), -90.0, 90.0);
    // Longitude degrees shrink with latitude; correct so scatter is
    // isotropic in kilometers.
    const double lon_scale =
        1.0 / std::max(0.2, std::cos(city.lat * std::numbers::pi / 180.0));
    where.lon = std::clamp(
        city.lon + rng.Normal(0.0, sigma_lat * lon_scale), -180.0, 180.0);

    LabelMask mask =
        MaskOf(static_cast<LabelId>(label_popularity.Sample(&rng)));
    for (LabelId a = 0; a < static_cast<LabelId>(config.num_labels);
         ++a) {
      if (!MaskHas(mask, a) && rng.Bernoulli(p_extra)) mask |= MaskOf(a);
    }
    builder.Add(rng.UniformDouble(0.0, config.duration), where, mask, i);
  }
  return builder.Build();
}

}  // namespace mqd
