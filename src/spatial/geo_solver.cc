#include "spatial/geo_solver.h"

#include <algorithm>
#include <cmath>

#include "core/solver.h"
#include "util/logging.h"

namespace mqd {

bool GeoCovers(const GeoInstance& inst, const GeoCoverage& cov,
               PostId coverer, PostId coveree) {
  if (std::fabs(inst.time(coverer) - inst.time(coveree)) >
      cov.lambda_seconds) {
    return false;
  }
  return HaversineKm(inst.location(coverer), inst.location(coveree)) <=
         cov.lambda_km;
}

std::vector<UncoveredGeoPair> FindUncoveredGeoPairs(
    const GeoInstance& inst, const GeoCoverage& cov,
    const std::vector<PostId>& selected) {
  std::vector<std::vector<PostId>> per_label(
      static_cast<size_t>(inst.num_labels()));
  {
    std::vector<PostId> sorted = selected;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (PostId z : sorted) {
      ForEachLabel(inst.labels(z),
                   [&](LabelId a) { per_label[a].push_back(z); });
    }
  }
  std::vector<UncoveredGeoPair> uncovered;
  for (LabelId a = 0; a < static_cast<LabelId>(inst.num_labels()); ++a) {
    const std::vector<PostId>& zs = per_label[a];
    size_t lo = 0;
    for (PostId p : inst.label_posts(a)) {
      const double t = inst.time(p);
      while (lo < zs.size() &&
             inst.time(zs[lo]) < t - cov.lambda_seconds) {
        ++lo;
      }
      bool covered = false;
      for (size_t k = lo; k < zs.size(); ++k) {
        if (inst.time(zs[k]) > t + cov.lambda_seconds) break;
        if (GeoCovers(inst, cov, zs[k], p)) {
          covered = true;
          break;
        }
      }
      if (!covered) uncovered.push_back(UncoveredGeoPair{p, a});
    }
  }
  return uncovered;
}

Result<std::vector<PostId>> SolveGeoGreedy(const GeoInstance& inst,
                                           const GeoCoverage& cov) {
  const size_t n = inst.num_posts();
  std::vector<LabelMask> covered(n, 0);
  std::vector<int64_t> gain(n, 0);
  size_t remaining = inst.num_pairs();

  // Initial gains: posts each candidate covers, per carried label.
  for (PostId p = 0; p < n; ++p) {
    ForEachLabel(inst.labels(p), [&](LabelId a) {
      for (PostId q : inst.LabelPostsInTimeRange(
               a, inst.time(p) - cov.lambda_seconds,
               inst.time(p) + cov.lambda_seconds)) {
        if (GeoCovers(inst, cov, p, q)) ++gain[p];
      }
    });
  }

  std::vector<PostId> out;
  while (remaining > 0) {
    PostId best = kInvalidPost;
    int64_t best_gain = 0;
    for (PostId p = 0; p < n; ++p) {
      if (gain[p] > best_gain) {
        best_gain = gain[p];
        best = p;
      }
    }
    if (best == kInvalidPost) {
      return Status::Internal("geo greedy stalled with uncovered pairs");
    }
    out.push_back(best);
    ForEachLabel(inst.labels(best), [&](LabelId a) {
      const LabelMask abit = MaskOf(a);
      for (PostId q : inst.LabelPostsInTimeRange(
               a, inst.time(best) - cov.lambda_seconds,
               inst.time(best) + cov.lambda_seconds)) {
        if ((covered[q] & abit) != 0 ||
            !GeoCovers(inst, cov, best, q)) {
          continue;
        }
        covered[q] |= abit;
        --remaining;
        for (PostId r : inst.LabelPostsInTimeRange(
                 a, inst.time(q) - cov.lambda_seconds,
                 inst.time(q) + cov.lambda_seconds)) {
          if (GeoCovers(inst, cov, r, q)) --gain[r];
        }
      }
    });
  }
  internal::CanonicalizeSelection(&out);
  return out;
}

namespace {

class GeoBnB {
 public:
  GeoBnB(const GeoInstance& inst, const GeoCoverage& cov,
         uint64_t max_nodes)
      : inst_(inst),
        cov_(cov),
        max_nodes_(max_nodes),
        covered_(inst.num_posts(), 0),
        remaining_(inst.num_pairs()) {
    coverers_.resize(inst.num_posts());
    for (PostId p = 0; p < inst.num_posts(); ++p) {
      ForEachLabel(inst.labels(p), [&](LabelId a) {
        std::vector<PostId> cands;
        for (PostId r : inst.LabelPostsInTimeRange(
                 a, inst.time(p) - cov.lambda_seconds,
                 inst.time(p) + cov.lambda_seconds)) {
          if (GeoCovers(inst, cov, r, p)) cands.push_back(r);
        }
        coverers_[p].push_back(std::move(cands));
      });
    }
  }

  Result<std::vector<PostId>> Run() {
    if (inst_.num_posts() == 0) return std::vector<PostId>{};
    MQD_ASSIGN_OR_RETURN(best_, SolveGeoGreedy(inst_, cov_));
    Recurse();
    if (exhausted_) {
      return Status::ResourceExhausted("geo BnB exceeded its node budget");
    }
    internal::CanonicalizeSelection(&best_);
    return best_;
  }

 private:
  void Recurse() {
    if (exhausted_) return;
    if (++nodes_ > max_nodes_) {
      exhausted_ = true;
      return;
    }
    if (remaining_ == 0) {
      if (chosen_.size() < best_.size()) best_ = chosen_;
      return;
    }
    if (chosen_.size() + 1 >= best_.size()) return;

    PostId bp = kInvalidPost;
    int bk = -1;
    size_t fewest = static_cast<size_t>(-1);
    for (PostId p = 0; p < inst_.num_posts() && fewest > 1; ++p) {
      int k = 0;
      ForEachLabel(inst_.labels(p), [&](LabelId a) {
        if (!MaskHas(covered_[p], a) && coverers_[p][k].size() < fewest) {
          fewest = coverers_[p][k].size();
          bp = p;
          bk = k;
        }
        ++k;
      });
    }
    MQD_DCHECK(bp != kInvalidPost);
    for (PostId z : coverers_[bp][static_cast<size_t>(bk)]) {
      const size_t mark = undo_.size();
      Apply(z);
      chosen_.push_back(z);
      Recurse();
      chosen_.pop_back();
      Unapply(mark);
      if (exhausted_) return;
    }
  }

  void Apply(PostId z) {
    ForEachLabel(inst_.labels(z), [&](LabelId a) {
      for (PostId q : inst_.LabelPostsInTimeRange(
               a, inst_.time(z) - cov_.lambda_seconds,
               inst_.time(z) + cov_.lambda_seconds)) {
        if (!MaskHas(covered_[q], a) && GeoCovers(inst_, cov_, z, q)) {
          covered_[q] |= MaskOf(a);
          undo_.push_back({q, a});
          --remaining_;
        }
      }
    });
  }

  void Unapply(size_t mark) {
    while (undo_.size() > mark) {
      const auto [q, a] = undo_.back();
      undo_.pop_back();
      covered_[q] &= ~MaskOf(a);
      ++remaining_;
    }
  }

  const GeoInstance& inst_;
  const GeoCoverage& cov_;
  uint64_t max_nodes_;
  std::vector<LabelMask> covered_;
  size_t remaining_;
  std::vector<std::vector<std::vector<PostId>>> coverers_;
  std::vector<PostId> chosen_;
  std::vector<PostId> best_;
  std::vector<std::pair<PostId, LabelId>> undo_;
  uint64_t nodes_ = 0;
  bool exhausted_ = false;
};

}  // namespace

Result<std::vector<PostId>> SolveGeoExact(const GeoInstance& inst,
                                          const GeoCoverage& cov,
                                          uint64_t max_nodes) {
  GeoBnB bnb(inst, cov, max_nodes);
  return bnb.Run();
}

}  // namespace mqd
