#ifndef MQD_SPATIAL_GEO_GEN_H_
#define MQD_SPATIAL_GEO_GEN_H_

#include <cstdint>

#include "spatial/geo_instance.h"
#include "util/result.h"

namespace mqd {

/// Synthetic geotagged stream: posts cluster around a handful of city
/// centers (Gaussian scatter) with Zipf city popularity — the shape of
/// real geotagged microblog data.
struct GeoGenConfig {
  int num_labels = 2;
  double duration = 3600.0;
  double posts_per_minute = 20.0;
  /// Mean labels per post in [1, num_labels].
  double overlap_rate = 1.2;
  int num_cities = 5;
  /// Standard deviation of the per-city scatter, km.
  double city_sigma_km = 15.0;
  /// Zipf exponent of city popularity.
  double city_skew = 0.8;
  uint64_t seed = 42;
};

Result<GeoInstance> GenerateGeoInstance(const GeoGenConfig& config);

}  // namespace mqd

#endif  // MQD_SPATIAL_GEO_GEN_H_
