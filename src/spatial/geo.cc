#include "spatial/geo.h"

#include <cmath>
#include <numbers>

namespace mqd {

namespace {
constexpr double kEarthRadiusKm = 6371.0;

double Radians(double degrees) {
  return degrees * std::numbers::pi / 180.0;
}
}  // namespace

double HaversineKm(const GeoPoint& a, const GeoPoint& b) {
  const double dlat = Radians(b.lat - a.lat);
  const double dlon = Radians(b.lon - a.lon);
  const double h =
      std::sin(dlat / 2.0) * std::sin(dlat / 2.0) +
      std::cos(Radians(a.lat)) * std::cos(Radians(b.lat)) *
          std::sin(dlon / 2.0) * std::sin(dlon / 2.0);
  return 2.0 * kEarthRadiusKm *
         std::asin(std::min(1.0, std::sqrt(h)));
}

double KmToLatDegrees(double km) {
  return km / (kEarthRadiusKm * std::numbers::pi / 180.0);
}

}  // namespace mqd
