#ifndef MQD_SPATIAL_GEO_INSTANCE_H_
#define MQD_SPATIAL_GEO_INSTANCE_H_

#include <span>
#include <vector>

#include "core/types.h"
#include "spatial/geo.h"
#include "util/result.h"

namespace mqd {

/// A geotagged post: timestamp plus location plus matched labels.
/// This is the paper's Section-9 extension target ("the selected posts
/// need to cover both the time and geospatial dimension").
struct GeoPost {
  double time = 0.0;
  GeoPoint location;
  LabelMask labels = 0;
  uint64_t external_id = 0;
};

/// Immutable spatiotemporal MQDP instance: posts sorted by time with
/// per-label lists, mirroring core/Instance for the 2-D setting —
/// including its CSR posting-list layout (flat id array + per-label
/// offsets + parallel flat time array for the range binary searches).
class GeoInstance {
 public:
  size_t num_posts() const { return posts_.size(); }
  int num_labels() const { return num_labels_; }

  const GeoPost& post(PostId id) const { return posts_[id]; }
  double time(PostId id) const { return posts_[id].time; }
  const GeoPoint& location(PostId id) const { return posts_[id].location; }
  LabelMask labels(PostId id) const { return posts_[id].labels; }

  std::span<const PostId> label_posts(LabelId a) const {
    return {label_ids_.data() + label_offsets_[a],
            label_offsets_[a + 1] - label_offsets_[a]};
  }

  /// Times of LP(a), parallel to label_posts(a).
  std::span<const double> label_times(LabelId a) const {
    return {label_times_.data() + label_offsets_[a],
            label_offsets_[a + 1] - label_offsets_[a]};
  }

  size_t num_pairs() const { return label_ids_.size(); }
  int max_labels_per_post() const { return max_labels_per_post_; }

  /// Posts of label `a` with time in [lo, hi] (the time window is the
  /// cheap first filter; callers apply the distance predicate).
  std::span<const PostId> LabelPostsInTimeRange(LabelId a, double lo,
                                                double hi) const;

 private:
  friend class GeoInstanceBuilder;
  std::vector<GeoPost> posts_;
  std::vector<size_t> label_offsets_ = {0};
  std::vector<PostId> label_ids_;
  std::vector<double> label_times_;
  int num_labels_ = 0;
  int max_labels_per_post_ = 0;
};

class GeoInstanceBuilder {
 public:
  explicit GeoInstanceBuilder(int num_labels);

  GeoInstanceBuilder& Add(double time, GeoPoint location, LabelMask labels,
                          uint64_t external_id = 0);

  size_t size() const { return posts_.size(); }

  Result<GeoInstance> Build();

 private:
  int num_labels_;
  std::vector<GeoPost> posts_;
};

}  // namespace mqd

#endif  // MQD_SPATIAL_GEO_INSTANCE_H_
