#ifndef MQD_CORE_GREEDY_STATE_H_
#define MQD_CORE_GREEDY_STATE_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>

#include "core/coverage.h"
#include "core/instance.h"
#include "core/kernels.h"
#include "core/types.h"
#include "util/arena.h"
#include "util/logging.h"

namespace mqd::internal {

/// The shared bookkeeping of GreedySC's set-cover loop: per-post
/// residual gains, the covered-pair bitmap, and the pair counter.
/// Exposed (internal) so the serial engines in greedy_sc.cc and the
/// parallel gain-argmax engine run the identical state machine; any
/// divergence is a bug the differential tests are designed to catch.
///
/// Every array lives on the caller's Arena (normally the thread's
/// SolveScratch, rewound per solve): all sizes are known up front, so
/// construction is a handful of pointer bumps and repeated solves
/// allocate nothing once the arena is warm.
///
/// Gain maintenance runs one of two paths per newly covered pair
/// (q, a):
///  * Fast path (uniform lambda): every r within MaxReach of q in
///    LP(a) covers (q, a), so the posts losing this pair form one
///    contiguous run of LP(a). The decrement is recorded as an O(1)
///    range-add into a per-label difference array over CSR positions
///    and lazily materialized into gain_ once per Select, right
///    before the next argmax needs the values (the prefix-sum walk is
///    the kern::materialize kernel, SIMD-dispatched).
///  * Exact path (variable lambda): coverage is directional — whether
///    r covers (q, a) depends on r's own reach — so the losers are
///    not contiguous and each candidate in the MaxReach window is
///    tested with Covers. The per-candidate test is the
///    kern::cover_decrement kernel over a flat per-label reach row
///    (Reach(r, a) materialized once per label on first touch): the
///    same fabs compare, the same integer decrements, so the state is
///    bit-identical to the virtual-call loop it replaces.
/// Both paths leave gain_ in the identical state; the fast path is
/// purely an algebraic regrouping of the same decrements.
class GreedyState {
 public:
  /// When `compute_gains` is false the gains are left at zero and the
  /// caller must fill them (e.g. via a parallel loop over
  /// InitialGain + set_gain) before the first argmax.
  GreedyState(const Instance& inst, const CoverageModel& model,
              Arena& arena, bool compute_gains = true)
      : inst_(inst),
        model_(model),
        uniform_(model.IsUniform()),
        covered_(arena.AllocZeroedSpan<LabelMask>(inst.num_posts())),
        gain_(arena.AllocZeroedSpan<int64_t>(inst.num_posts())),
        remaining_(inst.num_pairs()) {
    const size_t num_labels = static_cast<size_t>(inst.num_labels());
    if (uniform_) {
      // One slot of gutter per label: a range ending at position
      // |LP(a)| writes its +1 marker at delta_base(a) + |LP(a)|, which
      // must not alias the next label's first slot.
      delta_ = arena.AllocZeroedSpan<int32_t>(inst.num_pairs() + num_labels + 1);
      dirty_lo_ = arena.AllocSpan<size_t>(num_labels);
      dirty_hi_ = arena.AllocZeroedSpan<size_t>(num_labels);
      dirty_labels_ = arena.AllocSpan<LabelId>(num_labels);
      for (size_t a = 0; a < num_labels; ++a) dirty_lo_[a] = kClean;
    } else {
      // Exact-path reach rows, one double per CSR pair position,
      // filled lazily per label (most Selects touch few labels).
      reach_flat_ = arena.AllocSpan<double>(inst.num_pairs());
      reach_ready_ = arena.AllocZeroedSpan<uint8_t>(num_labels);
    }
    if (!compute_gains) return;
    if (uniform_) {
      // Bulk init: with one constant reach the per-position window
      // ends are monotone in the sorted value order, so one
      // two-pointer sweep per label computes every |S_p| term in
      // O(num_pairs) total instead of O(num_pairs log) binary
      // searches. Counts are identical integers to InitialGain's.
      const DimValue lambda = model.MaxReach();
      for (LabelId a = 0; a < static_cast<LabelId>(inst.num_labels());
           ++a) {
        const std::span<const DimValue> values = inst.label_values(a);
        const std::span<const PostId> ids = inst.label_posts(a);
        size_t lo = 0, hi = 0;
        for (size_t i = 0; i < values.size(); ++i) {
          while (lo < values.size() && values[lo] < values[i] - lambda) {
            ++lo;
          }
          while (hi < values.size() && values[hi] <= values[i] + lambda) {
            ++hi;
          }
          gain_[ids[i]] += static_cast<int64_t>(hi - lo);
        }
      }
      return;
    }
    for (PostId p = 0; p < inst_.num_posts(); ++p) {
      gain_[p] = InitialGain(p);
    }
  }

  /// Initial gain of post p = |S_p| = number of (q, a) pairs with a in
  /// label(p) and q within Reach(p, a) of p. Pure function of the
  /// instance; safe to evaluate concurrently for distinct posts.
  int64_t InitialGain(PostId p) const {
    int64_t gain = 0;
    ForEachLabel(inst_.labels(p), [&](LabelId a) {
      const DimValue reach = model_.Reach(inst_, p, a);
      const DimValue v = inst_.value(p);
      gain += static_cast<int64_t>(
          inst_.LabelRangeBounds(a, v - reach, v + reach).size());
    });
    return gain;
  }

  void set_gain(PostId p, int64_t gain) { gain_[p] = gain; }
  int64_t gain(PostId p) const { return gain_[p]; }
  /// Raw gain array (indexed by PostId) for the argmax kernels.
  const int64_t* gains_data() const { return gain_.data(); }
  size_t remaining() const { return remaining_; }
  size_t num_posts() const { return inst_.num_posts(); }

  /// Newly covered pairs whose gain decrements were applied as one
  /// contiguous range-add (uniform lambda).
  uint64_t fastpath_updates() const { return fastpath_updates_; }
  /// Newly covered pairs that took the per-candidate Covers scan
  /// (variable lambda).
  uint64_t exact_updates() const { return exact_updates_; }

  /// Marks everything `p` covers and decrements the gains of every
  /// post whose set loses a pair. Gains are fully materialized when
  /// this returns.
  void Select(PostId p) {
    const DimValue max_reach = model_.MaxReach();
    const kern::KernelTable& kt = kern::Active();
    ForEachLabel(inst_.labels(p), [&](LabelId a) {
      const LabelMask abit = MaskOf(a);
      const DimValue reach = model_.Reach(inst_, p, a);
      const DimValue v = inst_.value(p);
      if (!uniform_) EnsureReachRow(a);
      for (PostId q : inst_.LabelPostsInRange(a, v - reach, v + reach)) {
        if ((covered_[q] & abit) != 0) continue;
        covered_[q] |= abit;
        --remaining_;
        // Every post r that covers (q, a) loses this pair.
        const DimValue vq = inst_.value(q);
        if (uniform_) {
          RangeDecrement(a,
                         inst_.LabelRangeBounds(a, vq - max_reach,
                                                vq + max_reach));
          ++fastpath_updates_;
        } else {
          const Instance::IndexRange r =
              inst_.LabelRangeBounds(a, vq - max_reach, vq + max_reach);
          const size_t base = inst_.label_offset(a);
          kt.cover_decrement(inst_.label_values(a).data() + r.begin,
                             reach_flat_.data() + base + r.begin,
                             r.size(), vq,
                             inst_.label_posts(a).data() + r.begin,
                             gain_.data());
          ++exact_updates_;
        }
      }
    });
    MaterializePending();
    MQD_DCHECK(gain_[p] == 0);
  }

 private:
  static constexpr size_t kClean = std::numeric_limits<size_t>::max();

  /// Start of label a's region in delta_: CSR offset shifted by one
  /// gutter slot per preceding label (see the constructor note).
  size_t delta_base(LabelId a) const {
    return inst_.label_offset(a) + static_cast<size_t>(a);
  }

  /// Materializes Reach(r, a) for every post of LP(a) into the flat
  /// reach row, position-aligned with label_values(a)/label_posts(a)
  /// so the cover_decrement kernel streams three parallel arrays.
  void EnsureReachRow(LabelId a) {
    if (reach_ready_[a]) return;
    reach_ready_[a] = 1;
    const std::span<const PostId> ids = inst_.label_posts(a);
    const size_t base = inst_.label_offset(a);
    for (size_t i = 0; i < ids.size(); ++i) {
      reach_flat_[base + i] = model_.Reach(inst_, ids[i], a);
    }
  }

  /// Records "-1 over positions [r.begin, r.end) of LP(a)" in the
  /// difference array and widens the label's dirty window.
  void RangeDecrement(LabelId a, Instance::IndexRange r) {
    const size_t base = delta_base(a);
    --delta_[base + r.begin];
    ++delta_[base + r.end];
    if (dirty_lo_[a] == kClean) {
      dirty_labels_[num_dirty_++] = a;
      dirty_lo_[a] = r.begin;
      dirty_hi_[a] = r.end;
    } else {
      dirty_lo_[a] = std::min(dirty_lo_[a], r.begin);
      dirty_hi_[a] = std::max(dirty_hi_[a], r.end);
    }
  }

  /// Flushes the pending range-adds into gain_: one prefix-sum walk
  /// per dirty label (the SIMD-dispatched materialize kernel), bounded
  /// to the touched position window.
  void MaterializePending() {
    const kern::KernelTable& kt = kern::Active();
    for (size_t d = 0; d < num_dirty_; ++d) {
      const LabelId a = dirty_labels_[d];
      const size_t base = delta_base(a);
      const std::span<const PostId> ids = inst_.label_posts(a);
      const size_t lo = dirty_lo_[a];
      const size_t hi = dirty_hi_[a];
      kt.materialize(delta_.data() + base + lo, hi - lo, ids.data() + lo,
                     gain_.data());
      delta_[base + hi] = 0;
      dirty_lo_[a] = kClean;
    }
    num_dirty_ = 0;
  }

  const Instance& inst_;
  const CoverageModel& model_;
  const bool uniform_;
  std::span<LabelMask> covered_;
  std::span<int64_t> gain_;
  size_t remaining_;
  // Fast-path state (sized only for uniform models): difference array
  // over global CSR positions plus per-label dirty windows. The dirty
  // label list has capacity num_labels; num_dirty_ is its fill.
  std::span<int32_t> delta_;
  std::span<size_t> dirty_lo_;
  std::span<size_t> dirty_hi_;
  std::span<LabelId> dirty_labels_;
  size_t num_dirty_ = 0;
  // Exact-path state (sized only for variable-lambda models): flat
  // per-pair reach rows plus a per-label filled flag.
  std::span<double> reach_flat_;
  std::span<uint8_t> reach_ready_;
  uint64_t fastpath_updates_ = 0;
  uint64_t exact_updates_ = 0;
};

}  // namespace mqd::internal

#endif  // MQD_CORE_GREEDY_STATE_H_
