#ifndef MQD_CORE_GREEDY_STATE_H_
#define MQD_CORE_GREEDY_STATE_H_

#include <cstdint>
#include <vector>

#include "core/coverage.h"
#include "core/instance.h"
#include "core/types.h"
#include "util/logging.h"

namespace mqd::internal {

/// The shared bookkeeping of GreedySC's set-cover loop: per-post
/// residual gains, the covered-pair bitmap, and the pair counter.
/// Exposed (internal) so the serial engines in greedy_sc.cc and the
/// parallel gain-argmax engine run the identical state machine; any
/// divergence is a bug the differential tests are designed to catch.
class GreedyState {
 public:
  /// When `compute_gains` is false the gains are left at zero and the
  /// caller must fill them (e.g. via a parallel loop over
  /// InitialGain + set_gain) before the first argmax.
  GreedyState(const Instance& inst, const CoverageModel& model,
              bool compute_gains = true)
      : inst_(inst),
        model_(model),
        covered_(inst.num_posts(), 0),
        gain_(inst.num_posts(), 0),
        remaining_(inst.num_pairs()) {
    if (!compute_gains) return;
    for (PostId p = 0; p < inst_.num_posts(); ++p) {
      gain_[p] = InitialGain(p);
    }
  }

  /// Initial gain of post p = |S_p| = number of (q, a) pairs with a in
  /// label(p) and q within Reach(p, a) of p. Pure function of the
  /// instance; safe to evaluate concurrently for distinct posts.
  int64_t InitialGain(PostId p) const {
    int64_t gain = 0;
    ForEachLabel(inst_.labels(p), [&](LabelId a) {
      const DimValue reach = model_.Reach(inst_, p, a);
      const DimValue v = inst_.value(p);
      gain += static_cast<int64_t>(
          inst_.LabelPostsInRange(a, v - reach, v + reach).size());
    });
    return gain;
  }

  void set_gain(PostId p, int64_t gain) { gain_[p] = gain; }
  int64_t gain(PostId p) const { return gain_[p]; }
  size_t remaining() const { return remaining_; }
  size_t num_posts() const { return inst_.num_posts(); }

  /// Marks everything `p` covers and decrements the gains of every
  /// post whose set loses a pair.
  void Select(PostId p) {
    const DimValue max_reach = model_.MaxReach();
    ForEachLabel(inst_.labels(p), [&](LabelId a) {
      const LabelMask abit = MaskOf(a);
      const DimValue reach = model_.Reach(inst_, p, a);
      const DimValue v = inst_.value(p);
      for (PostId q : inst_.LabelPostsInRange(a, v - reach, v + reach)) {
        if ((covered_[q] & abit) != 0) continue;
        covered_[q] |= abit;
        --remaining_;
        // Every post r that covers (q, a) loses this pair.
        const DimValue vq = inst_.value(q);
        for (PostId r :
             inst_.LabelPostsInRange(a, vq - max_reach, vq + max_reach)) {
          if (model_.Covers(inst_, r, a, q)) --gain_[r];
        }
      }
    });
    MQD_DCHECK(gain_[p] == 0);
  }

 private:
  const Instance& inst_;
  const CoverageModel& model_;
  std::vector<LabelMask> covered_;
  std::vector<int64_t> gain_;
  size_t remaining_;
};

}  // namespace mqd::internal

#endif  // MQD_CORE_GREEDY_STATE_H_
