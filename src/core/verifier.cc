#include "core/verifier.h"

#include <algorithm>

namespace mqd {

namespace {

/// Selected posts relevant to each label, ascending by value.
std::vector<std::vector<PostId>> SelectedPerLabel(
    const Instance& inst, const std::vector<PostId>& selected) {
  std::vector<PostId> sorted = selected;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<std::vector<PostId>> per_label(
      static_cast<size_t>(inst.num_labels()));
  for (PostId z : sorted) {
    ForEachLabel(inst.labels(z),
                 [&](LabelId a) { per_label[a].push_back(z); });
  }
  return per_label;
}

}  // namespace

std::vector<UncoveredPair> FindUncoveredPairs(
    const Instance& inst, const CoverageModel& model,
    const std::vector<PostId>& selected) {
  std::vector<UncoveredPair> uncovered;
  const std::vector<std::vector<PostId>> per_label =
      SelectedPerLabel(inst, selected);
  const DimValue max_reach = model.MaxReach();

  for (LabelId a = 0; a < static_cast<LabelId>(inst.num_labels()); ++a) {
    const std::span<const PostId> posts = inst.label_posts(a);
    const std::vector<PostId>& zs = per_label[a];
    size_t lo = 0;  // first candidate coverer not yet out of window
    for (PostId p : posts) {
      const DimValue v = inst.value(p);
      while (lo < zs.size() && inst.value(zs[lo]) < v - max_reach) ++lo;
      bool covered = false;
      for (size_t k = lo; k < zs.size(); ++k) {
        if (inst.value(zs[k]) > v + max_reach) break;
        if (model.Covers(inst, zs[k], a, p)) {
          covered = true;
          break;
        }
      }
      if (!covered) uncovered.push_back(UncoveredPair{p, a});
    }
  }
  return uncovered;
}

bool IsCover(const Instance& inst, const CoverageModel& model,
             const std::vector<PostId>& selected) {
  return FindUncoveredPairs(inst, model, selected).empty();
}

size_t CountCoveredPairs(const Instance& inst, const CoverageModel& model,
                         const std::vector<PostId>& selected) {
  return inst.num_pairs() -
         FindUncoveredPairs(inst, model, selected).size();
}

}  // namespace mqd
