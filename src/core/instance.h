#ifndef MQD_CORE_INSTANCE_H_
#define MQD_CORE_INSTANCE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.h"
#include "util/result.h"
#include "util/status.h"

namespace mqd {

/// An immutable MQDP problem instance <P, lambda-model>: the post list
/// sorted ascending by diversity-dimension value, plus the per-label
/// posting lists LP(a) the algorithms scan. Build one through
/// InstanceBuilder.
///
/// Storage is CSR (compressed sparse row): all posting lists live in
/// one flat PostId array indexed by per-label offsets, with a parallel
/// flat DimValue array mirroring the posts' values, so range queries
/// binary-search contiguous doubles instead of chasing
/// posts_[id].value through the id indirection. A position inside
/// LP(a) — as returned by LabelRangeBounds — is therefore a stable
/// dense index the solvers can key per-label auxiliary state on (see
/// GreedyState's incremental gain maintenance).
///
/// Invariants:
///  * posts are sorted by (value, insertion order); PostId i is the
///    position in this order;
///  * every post has a non-empty label mask (posts matching no query
///    are not part of P by definition);
///  * label ids are dense in [0, num_labels).
class Instance {
 public:
  size_t num_posts() const { return posts_.size(); }
  int num_labels() const { return num_labels_; }

  const Post& post(PostId id) const { return posts_[id]; }
  DimValue value(PostId id) const { return posts_[id].value; }
  LabelMask labels(PostId id) const { return posts_[id].labels; }

  const std::vector<Post>& posts() const { return posts_; }

  /// LP(a): ids of posts relevant to label a, ascending by value.
  std::span<const PostId> label_posts(LabelId a) const {
    return {label_ids_.data() + label_offsets_[a],
            label_offsets_[a + 1] - label_offsets_[a]};
  }

  /// Values of LP(a), parallel to label_posts(a): label_values(a)[i]
  /// == value(label_posts(a)[i]).
  std::span<const DimValue> label_values(LabelId a) const {
    return {label_values_.data() + label_offsets_[a],
            label_offsets_[a + 1] - label_offsets_[a]};
  }

  /// Start of LP(a) inside the flat CSR arrays; label_offset(a) +
  /// (position within LP(a)) is a dense global index in
  /// [0, num_pairs).
  size_t label_offset(LabelId a) const { return label_offsets_[a]; }

  /// Maximum number of labels any single post carries (the paper's
  /// `s`, which bounds Scan's approximation ratio).
  int max_labels_per_post() const { return max_labels_per_post_; }

  /// Average number of labels per post (the paper's "post overlap
  /// rate", Section 7.2). 1.0 means no post matches several queries.
  double overlap_rate() const;

  /// Total number of (post, label) pairs: sum_a |LP(a)|.
  size_t num_pairs() const { return label_ids_.size(); }

  /// Value span [min, max] of the posts; {0, 0} when empty.
  DimValue min_value() const {
    return posts_.empty() ? 0.0 : posts_.front().value;
  }
  DimValue max_value() const {
    return posts_.empty() ? 0.0 : posts_.back().value;
  }

  /// First post index with value >= v (lower bound on the sorted post
  /// order). O(log n).
  PostId LowerBound(DimValue v) const;
  /// First post index with value > v.
  PostId UpperBound(DimValue v) const;

  /// Half-open position range [begin, end) within LP(a) of the posts
  /// with value in [lo, hi]. O(log |LP(a)|) over the contiguous value
  /// array.
  struct IndexRange {
    size_t begin;
    size_t end;
    size_t size() const { return end - begin; }
  };
  IndexRange LabelRangeBounds(LabelId a, DimValue lo, DimValue hi) const;

  /// Restricts posts of label `a` to those with value in [lo, hi],
  /// returned as a subrange of label_posts(a). O(log |LP(a)|).
  std::span<const PostId> LabelPostsInRange(LabelId a, DimValue lo,
                                            DimValue hi) const {
    const IndexRange r = LabelRangeBounds(a, lo, hi);
    return {label_ids_.data() + label_offsets_[a] + r.begin, r.size()};
  }

 private:
  friend class InstanceBuilder;

  std::vector<Post> posts_;
  // CSR posting lists: label_offsets_ has num_labels + 1 entries;
  // LP(a) = label_ids_[label_offsets_[a] .. label_offsets_[a+1]).
  std::vector<size_t> label_offsets_ = {0};
  std::vector<PostId> label_ids_;
  std::vector<DimValue> label_values_;
  int num_labels_ = 0;
  int max_labels_per_post_ = 0;
};

/// Accumulates posts and produces a canonical Instance.
class InstanceBuilder {
 public:
  /// `num_labels` fixes the dense label universe size (1..kMaxLabels).
  explicit InstanceBuilder(int num_labels);

  /// Adds a post; `labels` must be a non-empty subset of the universe.
  InstanceBuilder& Add(DimValue value, LabelMask labels,
                       uint64_t external_id = 0);

  /// Number of posts added so far.
  size_t size() const { return posts_.size(); }

  /// Validates, sorts, builds the CSR label lists (exact-sized, no
  /// incremental growth). The builder is left empty.
  Result<Instance> Build();

 private:
  int num_labels_;
  std::vector<Post> posts_;
};

}  // namespace mqd

#endif  // MQD_CORE_INSTANCE_H_
