#ifndef MQD_CORE_INSTANCE_H_
#define MQD_CORE_INSTANCE_H_

#include <span>
#include <vector>

#include "core/types.h"
#include "util/result.h"
#include "util/status.h"

namespace mqd {

/// An immutable MQDP problem instance <P, lambda-model>: the post list
/// sorted ascending by diversity-dimension value, plus the per-label
/// posting lists LP(a) the algorithms scan. Build one through
/// InstanceBuilder.
///
/// Invariants:
///  * posts are sorted by (value, insertion order); PostId i is the
///    position in this order;
///  * every post has a non-empty label mask (posts matching no query
///    are not part of P by definition);
///  * label ids are dense in [0, num_labels).
class Instance {
 public:
  size_t num_posts() const { return posts_.size(); }
  int num_labels() const { return num_labels_; }

  const Post& post(PostId id) const { return posts_[id]; }
  DimValue value(PostId id) const { return posts_[id].value; }
  LabelMask labels(PostId id) const { return posts_[id].labels; }

  const std::vector<Post>& posts() const { return posts_; }

  /// LP(a): ids of posts relevant to label a, ascending by value.
  std::span<const PostId> label_posts(LabelId a) const {
    return label_lists_[a];
  }

  /// Maximum number of labels any single post carries (the paper's
  /// `s`, which bounds Scan's approximation ratio).
  int max_labels_per_post() const { return max_labels_per_post_; }

  /// Average number of labels per post (the paper's "post overlap
  /// rate", Section 7.2). 1.0 means no post matches several queries.
  double overlap_rate() const;

  /// Total number of (post, label) pairs: sum_a |LP(a)|.
  size_t num_pairs() const { return num_pairs_; }

  /// Value span [min, max] of the posts; {0, 0} when empty.
  DimValue min_value() const {
    return posts_.empty() ? 0.0 : posts_.front().value;
  }
  DimValue max_value() const {
    return posts_.empty() ? 0.0 : posts_.back().value;
  }

  /// First post index with value >= v (lower bound on the sorted post
  /// order). O(log n).
  PostId LowerBound(DimValue v) const;
  /// First post index with value > v.
  PostId UpperBound(DimValue v) const;

  /// Restricts posts of label `a` to those with value in [lo, hi],
  /// returned as a subrange of label_posts(a). O(log |LP(a)|).
  std::span<const PostId> LabelPostsInRange(LabelId a, DimValue lo,
                                            DimValue hi) const;

 private:
  friend class InstanceBuilder;

  std::vector<Post> posts_;
  std::vector<std::vector<PostId>> label_lists_;
  int num_labels_ = 0;
  int max_labels_per_post_ = 0;
  size_t num_pairs_ = 0;
};

/// Accumulates posts and produces a canonical Instance.
class InstanceBuilder {
 public:
  /// `num_labels` fixes the dense label universe size (1..kMaxLabels).
  explicit InstanceBuilder(int num_labels);

  /// Adds a post; `labels` must be a non-empty subset of the universe.
  InstanceBuilder& Add(DimValue value, LabelMask labels,
                       uint64_t external_id = 0);

  /// Number of posts added so far.
  size_t size() const { return posts_.size(); }

  /// Validates, sorts, builds label lists. The builder is left empty.
  Result<Instance> Build();

 private:
  int num_labels_;
  std::vector<Post> posts_;
};

}  // namespace mqd

#endif  // MQD_CORE_INSTANCE_H_
