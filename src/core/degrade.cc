#include "core/degrade.h"

#include <numeric>
#include <stdexcept>
#include <utility>

#include "core/branch_bound.h"
#include "core/greedy_sc.h"
#include "core/opt_dp.h"
#include "core/scan.h"
#include "obs/stack_metrics.h"
#include "util/logging.h"
#include "util/timer.h"

namespace mqd {

namespace internal {

std::vector<PostId> TrivialCover(const Instance& inst) {
  std::vector<PostId> all(inst.num_posts());
  std::iota(all.begin(), all.end(), PostId{0});
  return all;
}

}  // namespace internal

namespace {

std::vector<std::unique_ptr<Solver>> DefaultRungs() {
  std::vector<std::unique_ptr<Solver>> rungs;
  rungs.push_back(std::make_unique<GreedySCSolver>());
  rungs.push_back(std::make_unique<ScanPlusSolver>());
  rungs.push_back(std::make_unique<ScanSolver>());
  return rungs;
}

bool IsDeadlineFailure(const Status& st) {
  return st.code() == StatusCode::kDeadlineExceeded ||
         st.code() == StatusCode::kCancelled;
}

}  // namespace

DegradingSolver::DegradingSolver() : rungs_(DefaultRungs()) {}

DegradingSolver::DegradingSolver(std::vector<std::unique_ptr<Solver>> rungs)
    : rungs_(std::move(rungs)) {
  for (const auto& rung : rungs_) MQD_CHECK(rung != nullptr);
}

std::unique_ptr<DegradingSolver> DegradingSolver::WithOpt() {
  std::vector<std::unique_ptr<Solver>> rungs;
  rungs.push_back(std::make_unique<OptDpSolver>());
  for (auto& rung : DefaultRungs()) rungs.push_back(std::move(rung));
  return std::make_unique<DegradingSolver>(std::move(rungs));
}

std::unique_ptr<DegradingSolver> DegradingSolver::WithCertified(
    uint64_t max_nodes) {
  std::vector<std::unique_ptr<Solver>> rungs;
  rungs.push_back(std::make_unique<BranchAndBoundSolver>(
      BranchBoundConfig{.max_nodes = max_nodes}));
  for (auto& rung : DefaultRungs()) rungs.push_back(std::move(rung));
  return std::make_unique<DegradingSolver>(std::move(rungs));
}

Result<std::vector<PostId>> DegradingSolver::Solve(
    const Instance& inst, const CoverageModel& model) const {
  return SolveWithBudget(inst, model, Deadline::Unbounded());
}

Result<std::vector<PostId>> DegradingSolver::SolveWithBudget(
    const Instance& inst, const CoverageModel& model,
    const Deadline& deadline) const {
  return SolveDegrading(inst, model, deadline).cover;
}

DegradeOutcome DegradingSolver::SolveDegrading(
    const Instance& inst, const CoverageModel& model,
    const Deadline& deadline) const {
  const obs::RobustMetrics& robust = obs::GetRobustMetrics();
  DegradeOutcome outcome;
  Stopwatch watch;
  for (size_t i = 0; i < rungs_.size(); ++i) {
    const Solver& rung = *rungs_[i];
    // A certifying rung answers through the anytime certified entry
    // point so the outcome can carry its optimality certificate.
    const auto* certifying = dynamic_cast<const CertifyingSolver*>(&rung);
    Result<std::vector<PostId>> result = [&]() -> Result<std::vector<PostId>> {
      // A rung must never take the ladder down with it: anything it
      // throws (fault injection, bad_alloc under pressure) becomes a
      // failure and the next rung gets its turn.
      try {
        if (certifying != nullptr) {
          MQD_ASSIGN_OR_RETURN(
              CertifiedCover certified,
              certifying->SolveCertified(inst, model, deadline));
          outcome.certified = true;
          outcome.lower_bound = certified.lower_bound;
          outcome.certified_gap = certified.gap;
          outcome.proven_optimal = certified.proven_optimal;
          return std::move(certified.cover);
        }
        return rung.SolveWithBudget(inst, model, deadline);
      } catch (const std::exception& e) {
        return Status::Internal(std::string(rung.name()) +
                                " threw: " + e.what());
      } catch (...) {
        return Status::Internal(std::string(rung.name()) +
                                " threw a non-exception");
      }
    }();
    if (!result.ok()) outcome.certified = false;
    if (result.ok()) {
      outcome.cover = std::move(result).value();
      outcome.rung = std::string(rung.name());
      outcome.rung_index = i;
      outcome.degraded = i > 0;
      if (outcome.degraded) obs::DegradedTotalFor(outcome.rung).Increment();
      outcome.elapsed_seconds = watch.ElapsedSeconds();
      return outcome;
    }
    Status st = result.status();
    if (IsDeadlineFailure(st)) robust.deadline_expired->Increment();
    outcome.failures.push_back(std::move(st));
  }
  // Bottom rung: the all-posts cover. Zero compute, always valid.
  outcome.cover = internal::TrivialCover(inst);
  outcome.rung = "trivial";
  outcome.rung_index = rungs_.size();
  outcome.degraded = true;
  obs::DegradedTotalFor(outcome.rung).Increment();
  outcome.elapsed_seconds = watch.ElapsedSeconds();
  return outcome;
}

}  // namespace mqd
