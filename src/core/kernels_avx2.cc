// AVX2 kernel bodies. This translation unit is compiled with -mavx2
// (see src/CMakeLists.txt); nothing else in the binary may assume
// AVX2, so every vector intrinsic stays inside this file and is only
// reached through the dispatch table after a runtime CPU probe.
//
// Bit-identity notes (the contract of core/kernels.h):
//  - Integer kernels fold in the same order as the scalar reference
//    or reduce rare candidates through a scalar rescan of the chunk,
//    so strict-> tie-breaks ("first max wins") are preserved exactly.
//  - Partition kernels count monotone predicates whose partition
//    point is unique; linear counting and binary search agree.
//  - Double kernels evaluate the same per-element IEEE expressions
//    (sub, add, fabs-as-bitmask) as the scalar loops; max folds may
//    reassociate because the inputs are NaN-free and the candidates
//    cannot produce mixed-sign zero ties (values come from io-vetted
//    finite dimensions; fl(-x + x) = +0 under round-to-nearest).
//  - The difference-array prefix runs accumulate per-chunk partial
//    sums in int32 lanes: callers keep per-slot deltas bounded by the
//    label degree of a single select/batch (<= kMaxLabels or the
//    batch arrival count), far below int32 range.

#include <immintrin.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "core/kernels.h"

namespace mqd::kern {
namespace {

// Stable left-pack shuffle indices for every 8-bit keep mask.
constexpr std::array<std::array<uint32_t, 8>, 256> MakeCompactLut() {
  std::array<std::array<uint32_t, 8>, 256> lut{};
  for (unsigned m = 0; m < 256; ++m) {
    unsigned w = 0;
    for (unsigned b = 0; b < 8; ++b) {
      if (m & (1u << b)) lut[m][w++] = b;
    }
    for (; w < 8; ++w) lut[m][w] = 0;
  }
  return lut;
}

constexpr std::array<std::array<uint32_t, 8>, 256> kCompactLut =
    MakeCompactLut();

inline unsigned MaskPd(__m256d m) {
  return static_cast<unsigned>(_mm256_movemask_pd(m));
}

inline unsigned MaskI64(__m256i m) {
  return static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(m)));
}

ArgmaxCompactResult ArgmaxCompactAvx2(PostId* ids, size_t n,
                                      const int64_t* gains) {
  ArgmaxCompactResult r{0, kInvalidPost, 0};
  size_t w = 0;
  size_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  const long long* gbase = reinterpret_cast<const long long*>(gains);
  for (; i + 8 <= n; i += 8) {
    const __m256i idv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    const __m128i idlo = _mm256_castsi256_si128(idv);
    const __m128i idhi = _mm256_extracti128_si256(idv, 1);
    const __m256i g0 = _mm256_i32gather_epi64(gbase, idlo, 8);
    const __m256i g1 = _mm256_i32gather_epi64(gbase, idhi, 8);
    const unsigned keep = MaskI64(_mm256_cmpgt_epi64(g0, zero)) |
                          (MaskI64(_mm256_cmpgt_epi64(g1, zero)) << 4);
    // Rare path first, while the original ids are still in a register:
    // some lane beats the running best. Scalar rescan of the chunk
    // keeps the "first max wins" tie-break exact.
    const __m256i bb = _mm256_set1_epi64x(r.best_gain);
    const unsigned gt = MaskI64(_mm256_cmpgt_epi64(g0, bb)) |
                        (MaskI64(_mm256_cmpgt_epi64(g1, bb)) << 4);
    if (gt != 0) {
      alignas(32) int64_t gtmp[8];
      alignas(32) uint32_t idtmp[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(gtmp), g0);
      _mm256_store_si256(reinterpret_cast<__m256i*>(gtmp + 4), g1);
      _mm256_store_si256(reinterpret_cast<__m256i*>(idtmp), idv);
      for (int j = 0; j < 8; ++j) {
        if (gtmp[j] > r.best_gain) {
          r.best_gain = gtmp[j];
          r.best = idtmp[j];
        }
      }
    }
    // Stable compaction of surviving ids. The 8-lane store may write
    // past the surviving count but never past index i+7 (w <= i), so
    // unread source entries stay intact.
    const __m256i perm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kCompactLut[keep].data()));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(ids + w),
                        _mm256_permutevar8x32_epi32(idv, perm));
    w += static_cast<size_t>(std::popcount(keep));
  }
  for (; i < n; ++i) {
    const PostId p = ids[i];
    const int64_t g = gains[p];
    if (g <= 0) continue;
    ids[w++] = p;
    if (g > r.best_gain) {
      r.best_gain = g;
      r.best = p;
    }
  }
  r.size = w;
  return r;
}

size_t ArgmaxDenseAvx2(const int64_t* gains, size_t n) {
  int64_t best_gain = 0;
  size_t best = n;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i g =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(gains + i));
    const __m256i bb = _mm256_set1_epi64x(best_gain);
    if (MaskI64(_mm256_cmpgt_epi64(g, bb)) != 0) {
      for (size_t j = i; j < i + 4; ++j) {
        if (gains[j] > best_gain) {
          best_gain = gains[j];
          best = j;
        }
      }
    }
  }
  for (; i < n; ++i) {
    if (gains[i] > best_gain) {
      best_gain = gains[i];
      best = i;
    }
  }
  return best;
}

// Inclusive in-register prefix sum of 8 int32 lanes.
inline __m256i Prefix8(__m256i d) {
  d = _mm256_add_epi32(d, _mm256_slli_si256(d, 4));
  d = _mm256_add_epi32(d, _mm256_slli_si256(d, 8));
  const __m256i lane_total = _mm256_shuffle_epi32(d, 0xFF);
  // [0 | low-lane total] so the high 128-bit lane absorbs the low.
  const __m256i carry =
      _mm256_permute2x128_si256(lane_total, lane_total, 0x08);
  return _mm256_add_epi32(d, carry);
}

void MaterializeAvx2(int32_t* delta, size_t n, const PostId* ids,
                     int64_t* gains) {
  int64_t carry = 0;
  size_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    const __m256i d = Prefix8(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(delta + i)));
    alignas(32) int32_t pre[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(pre), d);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(delta + i), zero);
    for (int j = 0; j < 8; ++j) {
      const int64_t run = carry + pre[j];
      if (run != 0) gains[ids[i + static_cast<size_t>(j)]] += run;
    }
    carry += pre[7];
  }
  for (; i < n; ++i) {
    carry += delta[i];
    delta[i] = 0;
    if (carry != 0) gains[ids[i]] += carry;
  }
}

void PrefixRunsAvx2(int32_t* delta, size_t n, int64_t* runs) {
  int64_t carry = 0;
  size_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    const __m256i d = Prefix8(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(delta + i)));
    alignas(32) int32_t pre[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(pre), d);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(delta + i), zero);
    for (int j = 0; j < 8; ++j) runs[i + static_cast<size_t>(j)] = carry + pre[j];
    carry += pre[7];
  }
  for (; i < n; ++i) {
    carry += delta[i];
    delta[i] = 0;
    runs[i] = carry;
  }
}

// Above this size a branchy binary search beats a linear sweep; the
// partition point is unique, so both strategies agree bit-for-bit.
constexpr size_t kLinearCutoff = 128;

RunBounds CoverRunAvx2(const double* values, size_t n, double center,
                       double reach) {
  if (n > kLinearCutoff) {
    const double* lo = std::partition_point(
        values, values + n,
        [&](double v) { return v - center < -reach; });
    const double* hi = std::partition_point(
        lo, values + n, [&](double v) { return v - center <= reach; });
    return {static_cast<size_t>(lo - values),
            static_cast<size_t>(hi - values)};
  }
  const __m256d c = _mm256_set1_pd(center);
  const __m256d r = _mm256_set1_pd(reach);
  const __m256d nr = _mm256_set1_pd(-reach);
  size_t lo = 0;
  size_t hi = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(values + i), c);
    lo += std::popcount(MaskPd(_mm256_cmp_pd(d, nr, _CMP_LT_OQ)));
    hi += std::popcount(MaskPd(_mm256_cmp_pd(d, r, _CMP_LE_OQ)));
  }
  for (; i < n; ++i) {
    const double d = values[i] - center;
    lo += (d < -reach) ? 1u : 0u;
    hi += (d <= reach) ? 1u : 0u;
  }
  return {lo, hi};
}

RunBounds CovererRunAvx2(const double* values, size_t n, double center,
                         double reach) {
  if (n > kLinearCutoff) {
    const double* lo = std::partition_point(
        values, values + n, [&](double v) { return v + reach < center; });
    const double* hi = std::partition_point(
        lo, values + n, [&](double v) { return v - reach <= center; });
    return {static_cast<size_t>(lo - values),
            static_cast<size_t>(hi - values)};
  }
  const __m256d c = _mm256_set1_pd(center);
  const __m256d r = _mm256_set1_pd(reach);
  size_t lo = 0;
  size_t hi = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    lo += std::popcount(
        MaskPd(_mm256_cmp_pd(_mm256_add_pd(v, r), c, _CMP_LT_OQ)));
    hi += std::popcount(
        MaskPd(_mm256_cmp_pd(_mm256_sub_pd(v, r), c, _CMP_LE_OQ)));
  }
  for (; i < n; ++i) {
    lo += (values[i] + reach < center) ? 1u : 0u;
    hi += (values[i] - reach <= center) ? 1u : 0u;
  }
  return {lo, hi};
}

uint64_t SumU8Avx2(const uint8_t* flags, size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(flags + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(v, zero));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) total += flags[i];
  return total;
}

double MaxCoverEndAvx2(const double* values, size_t n, double center,
                       double reach, double init) {
  double acc = init;
  size_t i = 0;
  if (n >= 4) {
    const __m256d c = _mm256_set1_pd(center);
    const __m256d r = _mm256_set1_pd(reach);
    const __m256d sign = _mm256_set1_pd(-0.0);
    __m256d accv = _mm256_set1_pd(init);
    for (; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_loadu_pd(values + i);
      const __m256d ad = _mm256_andnot_pd(sign, _mm256_sub_pd(v, c));
      const __m256d pass = _mm256_cmp_pd(ad, r, _CMP_LE_OQ);
      const __m256d cand = _mm256_add_pd(v, r);
      accv = _mm256_max_pd(accv, _mm256_blendv_pd(accv, cand, pass));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, accv);
    for (int j = 0; j < 4; ++j) acc = std::max(acc, lanes[j]);
  }
  for (; i < n; ++i) {
    if (std::fabs(values[i] - center) <= reach) {
      acc = std::max(acc, values[i] + reach);
    }
  }
  return acc;
}

size_t LastCoverAvx2(const double* values, size_t n, double center,
                     double reach, double limit) {
  size_t last = kNoIndex;
  size_t i = 0;
  const __m256d c = _mm256_set1_pd(center);
  const __m256d r = _mm256_set1_pd(reach);
  const __m256d lim = _mm256_set1_pd(limit);
  const __m256d sign = _mm256_set1_pd(-0.0);
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    const unsigned stop = MaskPd(_mm256_cmp_pd(v, lim, _CMP_GT_OQ));
    const __m256d ad = _mm256_andnot_pd(sign, _mm256_sub_pd(v, c));
    unsigned pass = MaskPd(_mm256_cmp_pd(ad, r, _CMP_LE_OQ));
    if (stop != 0) {
      // Lanes at and after the first stop were never examined by the
      // scalar loop; mask them out and finish.
      pass &= (1u << std::countr_zero(stop)) - 1u;
      if (pass != 0) last = i + static_cast<size_t>(std::bit_width(pass)) - 1;
      return last;
    }
    if (pass != 0) last = i + static_cast<size_t>(std::bit_width(pass)) - 1;
  }
  for (; i < n; ++i) {
    if (values[i] > limit) break;
    if (std::fabs(values[i] - center) <= reach) last = i;
  }
  return last;
}

void CoverDecrementAvx2(const double* values, const double* reaches,
                        size_t n, double center, const PostId* ids,
                        int64_t* gains) {
  size_t i = 0;
  const __m256d c = _mm256_set1_pd(center);
  const __m256d sign = _mm256_set1_pd(-0.0);
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    const __m256d r = _mm256_loadu_pd(reaches + i);
    const __m256d ad = _mm256_andnot_pd(sign, _mm256_sub_pd(v, c));
    unsigned pass = MaskPd(_mm256_cmp_pd(ad, r, _CMP_LE_OQ));
    // Scatter the rare hits scalar-ly: `ids` may repeat inside one
    // vector, so a gather/subtract/scatter would lose decrements.
    while (pass != 0) {
      const unsigned j = static_cast<unsigned>(std::countr_zero(pass));
      pass &= pass - 1u;
      --gains[ids[i + j]];
    }
  }
  for (; i < n; ++i) {
    if (std::fabs(values[i] - center) <= reaches[i]) --gains[ids[i]];
  }
}

constexpr KernelTable kAvx2Table{
    ArgmaxCompactAvx2, ArgmaxDenseAvx2, MaterializeAvx2,
    PrefixRunsAvx2,    CoverRunAvx2,    CovererRunAvx2,
    SumU8Avx2,         MaxCoverEndAvx2, LastCoverAvx2,
    CoverDecrementAvx2,
};

}  // namespace

namespace internal {

const KernelTable& Avx2Table() { return kAvx2Table; }

}  // namespace internal

}  // namespace mqd::kern
