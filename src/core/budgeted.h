#ifndef MQD_CORE_BUDGETED_H_
#define MQD_CORE_BUDGETED_H_

#include <cstddef>
#include <vector>

#include "core/coverage.h"
#include "core/instance.h"
#include "util/result.h"

namespace mqd {

/// The budgeted companion of MQDP: a feed UI can display at most k
/// posts ("if there are 20 negative posts and 2 positive, and we only
/// show 3 to the user..." — Section 6's motivating constraint), so
/// instead of the *minimum full cover* we want the k posts that
/// lambda-cover the most (post, label) pairs — budgeted maximum
/// coverage.
struct BudgetedResult {
  std::vector<PostId> selection;  // sorted, |selection| <= k
  size_t covered_pairs = 0;
  size_t total_pairs = 0;
  double coverage_fraction() const {
    return total_pairs == 0
               ? 1.0
               : static_cast<double>(covered_pairs) /
                     static_cast<double>(total_pairs);
  }
};

/// Greedy maximum coverage: k rounds of the highest-residual-gain
/// post. Classic (1 - 1/e) approximation of the optimal k-selection
/// (the objective is monotone submodular). With k at least the size of
/// the GreedySC cover the result covers everything.
Result<BudgetedResult> SolveBudgeted(const Instance& inst,
                                     const CoverageModel& model, size_t k);

/// Exact reference via exhaustive k-subset search; tiny instances
/// only (n choose k explodes).
Result<BudgetedResult> SolveBudgetedExact(const Instance& inst,
                                          const CoverageModel& model,
                                          size_t k);

}  // namespace mqd

#endif  // MQD_CORE_BUDGETED_H_
