#ifndef MQD_CORE_BASELINES_H_
#define MQD_CORE_BASELINES_H_

#include <vector>

#include "core/coverage.h"
#include "core/instance.h"
#include "util/result.h"

namespace mqd {

/// Baselines from the related work the paper positions itself against
/// (Section 8): classic result-diversification methods that maximize
/// dissimilarity instead of guaranteeing coverage. They pick a fixed
/// budget k of posts; benches compare what fraction of (post, label)
/// pairs such selections leave uncovered versus an MQDP cover of the
/// same size.

/// Greedy max-min dispersion (the Gonzalez 2-approximation used by
/// MaxMin diversification, cf. [2, 19]): start from the post with the
/// extreme value, then repeatedly add the post maximizing the minimum
/// distance (on the diversity dimension) to the already-selected set.
/// Label-oblivious by design — which is exactly the weakness MQDP
/// fixes.
std::vector<PostId> MaxMinDispersion(const Instance& inst, size_t k);

/// Recency baseline: the k newest posts (what a plain reverse-
/// chronological timeline shows).
std::vector<PostId> TopKNewest(const Instance& inst, size_t k);

/// Uniform grid baseline: k posts closest to k evenly spaced points
/// of the value range (time-bucketed sampling, a common dashboard
/// heuristic). Duplicate picks are deduplicated, so fewer than k may
/// return on sparse data.
std::vector<PostId> UniformGrid(const Instance& inst, size_t k);

/// Per-label round robin: cycle over the labels picking each label's
/// next most recent unselected post until k posts are chosen —
/// label-aware but coverage-oblivious.
std::vector<PostId> LabelRoundRobin(const Instance& inst, size_t k);

/// Fraction of (post, label) pairs of `inst` that `selected` leaves
/// uncovered under `model` (0 = full cover). The headline comparison
/// metric for the baseline bench.
double UncoveredPairFraction(const Instance& inst,
                             const CoverageModel& model,
                             const std::vector<PostId>& selected);

}  // namespace mqd

#endif  // MQD_CORE_BASELINES_H_
