#ifndef MQD_CORE_TYPES_H_
#define MQD_CORE_TYPES_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mqd {

/// Index of a post inside an Instance (position in the value-sorted
/// post vector).
using PostId = uint32_t;

/// Dense id of a query label (a user query / topic / hashtag).
using LabelId = uint32_t;

/// A post's position on the diversity dimension F: seconds for the
/// time dimension, [-1, 1] for sentiment polarity, etc. The algorithms
/// only ever compare distances |F(Pi) - F(Pj)| against thresholds.
using DimValue = double;

/// Set of labels a post is relevant to, as a bitmask. An instance may
/// therefore carry at most kMaxLabels active labels; this matches the
/// paper's regime (|L| <= 20 in all experiments) with ample headroom.
using LabelMask = uint64_t;

inline constexpr int kMaxLabels = 64;

/// Sentinel meaning "no post".
inline constexpr PostId kInvalidPost = static_cast<PostId>(-1);

inline LabelMask MaskOf(LabelId a) { return LabelMask{1} << a; }

inline bool MaskHas(LabelMask mask, LabelId a) {
  return (mask >> a) & LabelMask{1};
}

inline int MaskCount(LabelMask mask) { return std::popcount(mask); }

/// Expands a mask into label ids, ascending.
inline std::vector<LabelId> MaskToLabels(LabelMask mask) {
  std::vector<LabelId> out;
  out.reserve(static_cast<size_t>(MaskCount(mask)));
  while (mask != 0) {
    out.push_back(static_cast<LabelId>(std::countr_zero(mask)));
    mask &= mask - 1;
  }
  return out;
}

/// Iterates the set bits of `mask`, calling fn(LabelId).
template <typename Fn>
inline void ForEachLabel(LabelMask mask, Fn&& fn) {
  while (mask != 0) {
    fn(static_cast<LabelId>(std::countr_zero(mask)));
    mask &= mask - 1;
  }
}

/// A microblogging post as the optimizer sees it: a value on the
/// diversity dimension plus the set of matched labels. `external_id`
/// threads through whatever identifier the data source used (tweet id,
/// row number) so results can be traced back.
struct Post {
  DimValue value = 0.0;
  LabelMask labels = 0;
  uint64_t external_id = 0;
};

}  // namespace mqd

#endif  // MQD_CORE_TYPES_H_
