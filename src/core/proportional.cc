#include "core/proportional.h"

#include <cmath>

#include "util/logging.h"

namespace mqd {

DimValue ProportionalLambda(DimValue lambda0, double density_a,
                            double density0) {
  MQD_DCHECK(density0 > 0.0);
  return lambda0 * std::exp(1.0 - density_a / density0);
}

Result<std::unique_ptr<VariableLambda>> ComputeProportionalLambdas(
    const Instance& inst, const ProportionalConfig& config) {
  if (inst.num_posts() == 0) {
    return Status::InvalidArgument(
        "proportional lambdas need a non-empty instance");
  }
  if (config.lambda0 <= 0.0 || config.minute <= 0.0) {
    return Status::InvalidArgument("lambda0 and minute must be positive");
  }

  // Baseline density in posts per minute. A degenerate span (all posts
  // at one value) falls back to the whole set in a single 2*lambda0
  // window.
  const DimValue span =
      std::max(inst.max_value() - inst.min_value(), 2.0 * config.lambda0);
  const double span_minutes = span / config.minute;
  double density0 = 0.0;
  switch (config.base) {
    case BaseDensity::kPerLabelMean: {
      double sum = 0.0;
      for (LabelId a = 0; a < static_cast<LabelId>(inst.num_labels()); ++a) {
        sum += static_cast<double>(inst.label_posts(a).size());
      }
      density0 = sum / inst.num_labels() / span_minutes;
      break;
    }
    case BaseDensity::kAnyLabel:
      density0 = static_cast<double>(inst.num_posts()) / span_minutes;
      break;
  }
  if (density0 <= 0.0) {
    return Status::Internal("baseline density is not positive");
  }

  const double window_minutes = 2.0 * config.lambda0 / config.minute;
  std::vector<std::vector<DimValue>> reaches(inst.num_posts());
  DimValue max_reach = 0.0;
  for (PostId p = 0; p < inst.num_posts(); ++p) {
    const DimValue v = inst.value(p);
    ForEachLabel(inst.labels(p), [&](LabelId a) {
      const size_t in_window =
          inst.LabelPostsInRange(a, v - config.lambda0, v + config.lambda0)
              .size();
      const double density_a =
          static_cast<double>(in_window) / window_minutes;
      const DimValue reach =
          ProportionalLambda(config.lambda0, density_a, density0);
      reaches[p].push_back(reach);
      max_reach = std::max(max_reach, reach);
    });
  }
  return std::make_unique<VariableLambda>(std::move(reaches), max_reach);
}

}  // namespace mqd
