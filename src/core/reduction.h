#ifndef MQD_CORE_REDUCTION_H_
#define MQD_CORE_REDUCTION_H_

#include <cstddef>
#include <vector>

#include "core/instance.h"
#include "util/result.h"

namespace mqd {

/// A CNF formula: each clause is a list of non-zero literals, DIMACS
/// style (+k = variable x_k, -k = its negation; variables are
/// 1-based).
struct CnfFormula {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;
};

/// Output of the Lemma-1 reduction: an MQDP instance (lambda = 1)
/// whose minimum cover has size `target` iff the formula is
/// satisfiable (and > target otherwise).
struct ReductionOutput {
  Instance instance;
  DimValue lambda = 1.0;
  /// n(2m + 3), the satisfiability threshold.
  size_t target = 0;
};

/// Builds the NP-hardness gadget of Section 3: labels {w_i, u_i,
/// ubar_i} per variable plus {c_j} per clause; posts at integral times
/// 1..2m+3 per the construction. Fails when the label budget
/// 3*num_vars + num_clauses exceeds kMaxLabels or the formula is
/// malformed.
Result<ReductionOutput> BuildCnfReduction(const CnfFormula& formula);

/// Exhaustive satisfiability check (2^num_vars); test oracle for tiny
/// formulas.
bool IsSatisfiable(const CnfFormula& formula);

/// The explicit cover the Lemma-1 (=>) direction constructs from a
/// satisfying assignment (`assignment[i]` is the value of x_{i+1}):
/// exactly n(2m+3) posts that lambda-cover the gadget. `instance` must
/// be the one BuildCnfReduction produced for `formula`.
///
/// Reproduction note (documented in DESIGN.md): the (<=) direction of
/// the published proof claims every cover needs n(2m+3) posts, via
/// "the only way to cover the 2m+3 u_i-posts with m+1 posts is the
/// even singletons". That step is incorrect — e.g. for m=1 the posts
/// at times {1, 4} also cover times 1..5, which lets "mixed" covers
/// reuse the {u_i, w_i} end posts and save one post per variable, so
/// minimum covers below the threshold exist even for unsatisfiable
/// formulas. Our exact solvers expose this; see
/// reduction_test.cc:LemmaOneErratum.
Result<std::vector<PostId>> BuildAssignmentCover(
    const CnfFormula& formula, const std::vector<bool>& assignment,
    const Instance& instance);

}  // namespace mqd

#endif  // MQD_CORE_REDUCTION_H_
