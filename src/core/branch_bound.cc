#include "core/branch_bound.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "core/greedy_sc.h"
#include "obs/stack_metrics.h"
#include "util/logging.h"
#include "util/timer.h"

namespace mqd {

namespace {

/// The recursive search core. One instance per solve; the certified
/// and exact entry points share it and differ only in how they treat
/// interruption.
class BnBEngine {
 public:
  BnBEngine(const Instance& inst, const CoverageModel& model,
            const BranchBoundConfig& config, const Deadline& deadline)
      : inst_(inst),
        model_(model),
        config_(config),
        deadline_(deadline),
        budget_(deadline_, /*stride=*/4096),
        covered_(inst.num_posts(), 0),
        remaining_(inst.num_pairs()) {
    // Static candidate lists: coverers_[p][k] = posts that cover the
    // k-th label of post p (the branching alternatives).
    coverers_.resize(inst.num_posts());
    const DimValue max_reach = model.MaxReach();
    for (PostId p = 0; p < inst.num_posts(); ++p) {
      const DimValue v = inst.value(p);
      ForEachLabel(inst.labels(p), [&](LabelId a) {
        std::vector<PostId> cands;
        for (PostId r :
             inst.LabelPostsInRange(a, v - max_reach, v + max_reach)) {
          if (model.Covers(inst_, r, a, p)) cands.push_back(r);
        }
        coverers_[p].push_back(std::move(cands));
      });
    }
  }

  /// Runs warm start + root bounds + search. Returns OK when the
  /// incumbent is usable (always, once the warm start succeeded);
  /// search-cut conditions are reported through the stats/certificate,
  /// and the exact entry points turn them back into errors.
  Status Run() {
    if (inst_.num_posts() == 0) {
      search_complete_ = true;
      return Status::OK();
    }
    // Warm start: GreedySC's cover as the initial upper bound. This is
    // the only step that can fail outright under a tight budget.
    GreedySCSolver greedy;
    MQD_ASSIGN_OR_RETURN(best_,
                         greedy.SolveWithBudget(inst_, model_, deadline_));

    // Root lower bound (deadline-degradable: weaker but valid bounds
    // when cut short).
    root_bounds_ = ComputeLowerBound(inst_, model_, deadline_,
                                     {.use_lp_dual = config_.use_lp_bound});
    if (root_bounds_.best >= best_.size()) {
      // The warm start already meets the proven bound: optimal without
      // expanding a single node.
      search_complete_ = true;
      internal::CanonicalizeSelection(&best_);
      return Status::OK();
    }

    Recurse(/*depth=*/0);
    search_complete_ = !stats_.node_budget_exhausted && !stats_.interrupted;
    internal::CanonicalizeSelection(&best_);
    return Status::OK();
  }

  /// Proven lower bound on |OPT| after Run: the root bound until the
  /// search completes, the incumbent size (optimality) once it does.
  size_t ProvenLowerBound() const {
    if (search_complete_) return best_.size();
    return std::min(root_bounds_.best, best_.size());
  }

  bool search_complete() const { return search_complete_; }
  const std::vector<PostId>& best() const { return best_; }
  std::vector<PostId>&& TakeBest() { return std::move(best_); }
  const BranchBoundStats& stats() const { return stats_; }
  const LowerBoundReport& root_bounds() const { return root_bounds_; }

 private:
  void Recurse(size_t depth) {
    if (stats_.node_budget_exhausted || stats_.interrupted) return;
    if (++stats_.nodes > config_.max_nodes) {
      stats_.node_budget_exhausted = true;
      return;
    }
    if (budget_.Expired()) {
      stats_.interrupted = true;
      return;
    }
    stats_.max_depth = std::max(stats_.max_depth, uint64_t{depth});
    if (remaining_ == 0) {
      if (chosen_.size() < best_.size()) {
        best_ = chosen_;
        ++stats_.incumbent_updates;
      }
      return;
    }
    if (chosen_.size() + ResidualLowerBound() >= best_.size()) {
      ++stats_.pruned_by_bound;
      return;
    }

    // Branch on the uncovered pair with the fewest candidate coverers
    // (smallest fan-out first).
    PostId bp = kInvalidPost;
    int bk = -1;
    size_t fewest = static_cast<size_t>(-1);
    for (PostId p = 0; p < inst_.num_posts() && fewest > 1; ++p) {
      int k = 0;
      ForEachLabel(inst_.labels(p), [&](LabelId a) {
        if (!MaskHas(covered_[p], a) && coverers_[p][k].size() < fewest) {
          fewest = coverers_[p][k].size();
          bp = p;
          bk = k;
        }
        ++k;
      });
    }
    MQD_DCHECK(bp != kInvalidPost);

    for (PostId z : coverers_[bp][static_cast<size_t>(bk)]) {
      const size_t undo_mark = undo_.size();
      Apply(z);
      chosen_.push_back(z);
      Recurse(depth + 1);
      chosen_.pop_back();
      Unapply(undo_mark);
      if (stats_.node_budget_exhausted || stats_.interrupted) return;
    }
  }

  void Apply(PostId z) {
    const DimValue v = inst_.value(z);
    ForEachLabel(inst_.labels(z), [&](LabelId a) {
      const DimValue reach = model_.Reach(inst_, z, a);
      for (PostId q : inst_.LabelPostsInRange(a, v - reach, v + reach)) {
        if (!MaskHas(covered_[q], a)) {
          covered_[q] |= MaskOf(a);
          undo_.push_back({q, a});
          --remaining_;
        }
      }
    });
  }

  void Unapply(size_t mark) {
    while (undo_.size() > mark) {
      const auto [q, a] = undo_.back();
      undo_.pop_back();
      covered_[q] &= ~MaskOf(a);
      ++remaining_;
    }
  }

  /// Admissible residual bound: per-label stabbing optima over the
  /// still-uncovered pairs, divided by the max labels per post (each
  /// further chosen post helps at most s labels) — the counting bound
  /// of core/bounds.h restricted to the node's residual universe.
  size_t ResidualLowerBound() const {
    size_t total = 0;
    const int s = std::max(1, inst_.max_labels_per_post());
    for (LabelId a = 0; a < static_cast<LabelId>(inst_.num_labels()); ++a) {
      total += ResidualScanCount(a);
    }
    return (total + static_cast<size_t>(s) - 1) / static_cast<size_t>(s);
  }

  /// Minimum number of a-posts needed to cover the still-uncovered
  /// a-posts (interval-stabbing greedy; optimal per label).
  size_t ResidualScanCount(LabelId a) const {
    const std::span<const PostId> posts = inst_.label_posts(a);
    const DimValue max_reach = model_.MaxReach();
    const LabelMask abit = MaskOf(a);
    size_t count = 0;
    DimValue covered_until = -std::numeric_limits<DimValue>::infinity();
    for (size_t i = 0; i < posts.size(); ++i) {
      const PostId px = posts[i];
      if ((covered_[px] & abit) != 0 || inst_.value(px) <= covered_until) {
        continue;
      }
      const DimValue vx = inst_.value(px);
      DimValue best_end = vx + model_.Reach(inst_, px, a);
      for (PostId z :
           inst_.LabelPostsInRange(a, vx - max_reach, vx + max_reach)) {
        if (!model_.Covers(inst_, z, a, px)) continue;
        best_end =
            std::max(best_end, inst_.value(z) + model_.Reach(inst_, z, a));
      }
      ++count;
      covered_until = best_end;
    }
    return count;
  }

  const Instance& inst_;
  const CoverageModel& model_;
  BranchBoundConfig config_;
  Deadline deadline_;
  DeadlineChecker budget_;

  std::vector<LabelMask> covered_;
  size_t remaining_;
  std::vector<std::vector<std::vector<PostId>>> coverers_;
  std::vector<PostId> chosen_;
  std::vector<PostId> best_;
  std::vector<std::pair<PostId, LabelId>> undo_;
  BranchBoundStats stats_;
  LowerBoundReport root_bounds_;
  bool search_complete_ = false;
};

}  // namespace

Result<std::vector<PostId>> BranchAndBoundSolver::Solve(
    const Instance& inst, const CoverageModel& model) const {
  return SolveWithBudget(inst, model, Deadline::Unbounded());
}

Result<std::vector<PostId>> BranchAndBoundSolver::SolveWithBudget(
    const Instance& inst, const CoverageModel& model,
    const Deadline& deadline) const {
  BnBEngine engine(inst, model, config_, deadline);
  MQD_RETURN_NOT_OK(engine.Run());
  // The exact entry points keep the historical contract: an incomplete
  // search is an error, not a weaker answer.
  if (engine.stats().interrupted) return deadline.Check("BnB");
  if (engine.stats().node_budget_exhausted) {
    return Status::ResourceExhausted(
        "BranchAndBound exceeded its node budget");
  }
  return engine.TakeBest();
}

Result<CertifiedCover> BranchAndBoundSolver::SolveCertified(
    const Instance& inst, const CoverageModel& model,
    const Deadline& deadline) const {
  const obs::GapMetrics& metrics = obs::GetGapMetrics();
  Stopwatch watch;
  BnBEngine engine(inst, model, config_, deadline);
  if (Status st = engine.Run(); !st.ok()) {
    // Even the warm start failed: nothing certifiable to return.
    metrics.certify_errors->Increment();
    return st;
  }
  CertifiedCover out;
  out.lower_bound = engine.ProvenLowerBound();
  out.cover = engine.TakeBest();
  out.upper_bound = out.cover.size();
  MQD_DCHECK(out.lower_bound <= out.upper_bound);
  out.gap = out.upper_bound - out.lower_bound;
  out.proven_optimal = engine.search_complete();
  MQD_DCHECK(!out.proven_optimal || out.gap == 0);
  out.root_bounds = engine.root_bounds();
  out.stats = engine.stats();

  metrics.certified_solves->Increment();
  if (out.proven_optimal) metrics.proven_optimal->Increment();
  if (out.stats.interrupted) metrics.interrupted->Increment();
  metrics.nodes->Increment(out.stats.nodes);
  metrics.pruned->Increment(out.stats.pruned_by_bound);
  metrics.incumbent_updates->Increment(out.stats.incumbent_updates);
  metrics.gap->Observe(static_cast<double>(out.gap));
  metrics.certify_seconds->Observe(watch.ElapsedSeconds());
  metrics.last_gap->Set(static_cast<double>(out.gap));
  metrics.last_lower_bound->Set(static_cast<double>(out.lower_bound));
  return out;
}

}  // namespace mqd
