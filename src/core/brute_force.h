#ifndef MQD_CORE_BRUTE_FORCE_H_
#define MQD_CORE_BRUTE_FORCE_H_

#include <cstdint>

#include "core/solver.h"

namespace mqd {

/// Exact branch-and-bound reference solver.
///
/// Branches on the uncovered (post, label) pair with the fewest
/// candidate coverers (one branch per candidate — some selected post
/// must cover that pair), seeded with GreedySC's cover as the initial
/// upper bound and pruned with the admissible lower bound
/// ceil(sum_a scan_a / s), where scan_a is the per-label optimum for
/// the residual uncovered pairs and s the max labels per post (the
/// same counting argument behind Scan's approximation proof).
///
/// Exponential in the worst case; intended for instances of up to a
/// few dozen posts (test oracles, NP-hardness gadgets, variable-lambda
/// exact references). Fails with ResourceExhausted beyond
/// `max_nodes`.
class BranchAndBoundSolver final : public Solver {
 public:
  explicit BranchAndBoundSolver(uint64_t max_nodes = 50'000'000)
      : max_nodes_(max_nodes) {}

  std::string_view name() const override { return "BnB"; }
  Result<std::vector<PostId>> Solve(const Instance& inst,
                                    const CoverageModel& model) const override;

  /// Deadline is polled every few thousand search nodes.
  Result<std::vector<PostId>> SolveWithBudget(
      const Instance& inst, const CoverageModel& model,
      const Deadline& deadline) const override;

 private:
  uint64_t max_nodes_;
};

}  // namespace mqd

#endif  // MQD_CORE_BRUTE_FORCE_H_
