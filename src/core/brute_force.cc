#include "core/brute_force.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/greedy_sc.h"
#include "util/logging.h"

namespace mqd {

namespace {

class BnB {
 public:
  BnB(const Instance& inst, const CoverageModel& model, uint64_t max_nodes,
      const Deadline& deadline)
      : inst_(inst),
        model_(model),
        max_nodes_(max_nodes),
        deadline_(deadline),
        budget_(deadline_, /*stride=*/4096),
        covered_(inst.num_posts(), 0),
        remaining_(inst.num_pairs()) {
    // Static candidate lists: coverers_[p][k] = posts that cover the
    // k-th label of post p.
    coverers_.resize(inst.num_posts());
    const DimValue max_reach = model.MaxReach();
    for (PostId p = 0; p < inst.num_posts(); ++p) {
      const DimValue v = inst.value(p);
      ForEachLabel(inst.labels(p), [&](LabelId a) {
        std::vector<PostId> cands;
        for (PostId r :
             inst.LabelPostsInRange(a, v - max_reach, v + max_reach)) {
          if (model.Covers(inst_, r, a, p)) cands.push_back(r);
        }
        coverers_[p].push_back(std::move(cands));
      });
    }
  }

  Result<std::vector<PostId>> Run() {
    if (inst_.num_posts() == 0) return std::vector<PostId>{};
    // Seed the incumbent with GreedySC (always a valid cover).
    GreedySCSolver greedy;
    MQD_ASSIGN_OR_RETURN(best_,
                         greedy.SolveWithBudget(inst_, model_, deadline_));
    nodes_ = 0;
    exhausted_ = false;
    Recurse();
    if (interrupted_) return deadline_.Check("BnB");
    if (exhausted_) {
      return Status::ResourceExhausted(
          "BranchAndBound exceeded its node budget");
    }
    internal::CanonicalizeSelection(&best_);
    return best_;
  }

 private:
  void Recurse() {
    if (exhausted_ || interrupted_) return;
    if (++nodes_ > max_nodes_) {
      exhausted_ = true;
      return;
    }
    if (budget_.Expired()) {
      interrupted_ = true;
      return;
    }
    if (remaining_ == 0) {
      if (chosen_.size() < best_.size()) best_ = chosen_;
      return;
    }
    if (chosen_.size() + LowerBound() >= best_.size()) return;

    // Branch on the uncovered pair with the fewest candidate coverers.
    PostId bp = kInvalidPost;
    int bk = -1;
    size_t fewest = static_cast<size_t>(-1);
    for (PostId p = 0; p < inst_.num_posts() && fewest > 1; ++p) {
      int k = 0;
      ForEachLabel(inst_.labels(p), [&](LabelId a) {
        if (!MaskHas(covered_[p], a) && coverers_[p][k].size() < fewest) {
          fewest = coverers_[p][k].size();
          bp = p;
          bk = k;
        }
        ++k;
      });
    }
    MQD_DCHECK(bp != kInvalidPost);

    for (PostId z : coverers_[bp][static_cast<size_t>(bk)]) {
      const size_t undo_mark = undo_.size();
      Apply(z);
      chosen_.push_back(z);
      Recurse();
      chosen_.pop_back();
      Unapply(undo_mark);
      if (exhausted_ || interrupted_) return;
    }
  }

  void Apply(PostId z) {
    const DimValue v = inst_.value(z);
    ForEachLabel(inst_.labels(z), [&](LabelId a) {
      const DimValue reach = model_.Reach(inst_, z, a);
      for (PostId q : inst_.LabelPostsInRange(a, v - reach, v + reach)) {
        if (!MaskHas(covered_[q], a)) {
          covered_[q] |= MaskOf(a);
          undo_.push_back({q, a});
          --remaining_;
        }
      }
    });
  }

  void Unapply(size_t mark) {
    while (undo_.size() > mark) {
      const auto [q, a] = undo_.back();
      undo_.pop_back();
      covered_[q] &= ~MaskOf(a);
      ++remaining_;
    }
  }

  /// Admissible bound: per-label residual optima divided by the max
  /// labels per post (each chosen post helps at most s labels).
  size_t LowerBound() const {
    size_t total = 0;
    const int s = std::max(1, inst_.max_labels_per_post());
    for (LabelId a = 0; a < static_cast<LabelId>(inst_.num_labels()); ++a) {
      total += ResidualScanCount(a);
    }
    return (total + static_cast<size_t>(s) - 1) / static_cast<size_t>(s);
  }

  /// Minimum number of a-posts needed to cover the still-uncovered
  /// a-posts (interval-stabbing greedy; optimal per label).
  size_t ResidualScanCount(LabelId a) const {
    const std::span<const PostId> posts = inst_.label_posts(a);
    const DimValue max_reach = model_.MaxReach();
    const LabelMask abit = MaskOf(a);
    size_t count = 0;
    size_t i = 0;
    DimValue covered_until = -std::numeric_limits<DimValue>::infinity();
    while (i < posts.size()) {
      const PostId px = posts[i];
      if ((covered_[px] & abit) != 0 || inst_.value(px) <= covered_until) {
        ++i;
        continue;
      }
      const DimValue vx = inst_.value(px);
      DimValue best_end = vx + model_.Reach(inst_, px, a);
      for (size_t j = i + 1; j < posts.size(); ++j) {
        const PostId z = posts[j];
        if (inst_.value(z) > vx + max_reach) break;
        if (!model_.Covers(inst_, z, a, px)) continue;
        best_end =
            std::max(best_end, inst_.value(z) + model_.Reach(inst_, z, a));
      }
      ++count;
      covered_until = best_end;
      ++i;
    }
    return count;
  }

  const Instance& inst_;
  const CoverageModel& model_;
  uint64_t max_nodes_;
  Deadline deadline_;
  DeadlineChecker budget_;

  std::vector<LabelMask> covered_;
  size_t remaining_;
  std::vector<std::vector<std::vector<PostId>>> coverers_;
  std::vector<PostId> chosen_;
  std::vector<PostId> best_;
  std::vector<std::pair<PostId, LabelId>> undo_;
  uint64_t nodes_ = 0;
  bool exhausted_ = false;
  bool interrupted_ = false;
};

}  // namespace

Result<std::vector<PostId>> BranchAndBoundSolver::Solve(
    const Instance& inst, const CoverageModel& model) const {
  return SolveWithBudget(inst, model, Deadline::Unbounded());
}

Result<std::vector<PostId>> BranchAndBoundSolver::SolveWithBudget(
    const Instance& inst, const CoverageModel& model,
    const Deadline& deadline) const {
  BnB bnb(inst, model, max_nodes_, deadline);
  return bnb.Run();
}

}  // namespace mqd
