#include "core/instance.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace mqd {

double Instance::overlap_rate() const {
  if (posts_.empty()) return 0.0;
  return static_cast<double>(num_pairs_) / static_cast<double>(posts_.size());
}

PostId Instance::LowerBound(DimValue v) const {
  auto it = std::lower_bound(
      posts_.begin(), posts_.end(), v,
      [](const Post& p, DimValue x) { return p.value < x; });
  return static_cast<PostId>(it - posts_.begin());
}

PostId Instance::UpperBound(DimValue v) const {
  auto it = std::upper_bound(
      posts_.begin(), posts_.end(), v,
      [](DimValue x, const Post& p) { return x < p.value; });
  return static_cast<PostId>(it - posts_.begin());
}

std::span<const PostId> Instance::LabelPostsInRange(LabelId a, DimValue lo,
                                                    DimValue hi) const {
  const std::vector<PostId>& list = label_lists_[a];
  auto first = std::lower_bound(
      list.begin(), list.end(), lo,
      [this](PostId id, DimValue x) { return posts_[id].value < x; });
  auto last = std::upper_bound(
      first, list.end(), hi,
      [this](DimValue x, PostId id) { return x < posts_[id].value; });
  return {list.data() + (first - list.begin()),
          static_cast<size_t>(last - first)};
}

InstanceBuilder::InstanceBuilder(int num_labels) : num_labels_(num_labels) {
  MQD_CHECK(num_labels >= 1 && num_labels <= kMaxLabels)
      << "num_labels must be in [1, " << kMaxLabels << "], got "
      << num_labels;
}

InstanceBuilder& InstanceBuilder::Add(DimValue value, LabelMask labels,
                                      uint64_t external_id) {
  posts_.push_back(Post{value, labels, external_id});
  return *this;
}

Result<Instance> InstanceBuilder::Build() {
  const LabelMask universe =
      num_labels_ == kMaxLabels ? ~LabelMask{0}
                                : (LabelMask{1} << num_labels_) - 1;
  for (size_t i = 0; i < posts_.size(); ++i) {
    if (posts_[i].labels == 0) {
      return Status::InvalidArgument(
          StrFormat("post %zu has an empty label set", i));
    }
    if ((posts_[i].labels & ~universe) != 0) {
      return Status::InvalidArgument(
          StrFormat("post %zu has labels outside the %d-label universe", i,
                    num_labels_));
    }
  }

  // Stable sort keeps insertion order among equal values, giving a
  // deterministic total order that refines the dimension order (OPT's
  // "distinct timestamps" assumption is handled by this total order).
  std::stable_sort(
      posts_.begin(), posts_.end(),
      [](const Post& a, const Post& b) { return a.value < b.value; });

  Instance inst;
  inst.posts_ = std::move(posts_);
  posts_.clear();
  inst.num_labels_ = num_labels_;
  inst.label_lists_.assign(static_cast<size_t>(num_labels_), {});
  for (PostId i = 0; i < inst.posts_.size(); ++i) {
    const LabelMask mask = inst.posts_[i].labels;
    ForEachLabel(mask, [&](LabelId a) { inst.label_lists_[a].push_back(i); });
    inst.max_labels_per_post_ =
        std::max(inst.max_labels_per_post_, MaskCount(mask));
    inst.num_pairs_ += static_cast<size_t>(MaskCount(mask));
  }
  return inst;
}

}  // namespace mqd
