#include "core/instance.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace mqd {

double Instance::overlap_rate() const {
  if (posts_.empty()) return 0.0;
  return static_cast<double>(num_pairs()) /
         static_cast<double>(posts_.size());
}

PostId Instance::LowerBound(DimValue v) const {
  auto it = std::lower_bound(
      posts_.begin(), posts_.end(), v,
      [](const Post& p, DimValue x) { return p.value < x; });
  return static_cast<PostId>(it - posts_.begin());
}

PostId Instance::UpperBound(DimValue v) const {
  auto it = std::upper_bound(
      posts_.begin(), posts_.end(), v,
      [](DimValue x, const Post& p) { return x < p.value; });
  return static_cast<PostId>(it - posts_.begin());
}

Instance::IndexRange Instance::LabelRangeBounds(LabelId a, DimValue lo,
                                                DimValue hi) const {
  const std::span<const DimValue> values = label_values(a);
  auto first = std::lower_bound(values.begin(), values.end(), lo);
  auto last = std::upper_bound(first, values.end(), hi);
  return {static_cast<size_t>(first - values.begin()),
          static_cast<size_t>(last - values.begin())};
}

InstanceBuilder::InstanceBuilder(int num_labels) : num_labels_(num_labels) {
  MQD_CHECK(num_labels >= 1 && num_labels <= kMaxLabels)
      << "num_labels must be in [1, " << kMaxLabels << "], got "
      << num_labels;
}

InstanceBuilder& InstanceBuilder::Add(DimValue value, LabelMask labels,
                                      uint64_t external_id) {
  posts_.push_back(Post{value, labels, external_id});
  return *this;
}

Result<Instance> InstanceBuilder::Build() {
  // Validate the "dense labels, non-empty mask" invariants up front
  // with proper Statuses (not just debug checks): every mask non-empty
  // and inside the dense [0, num_labels) universe.
  if (num_labels_ < 1 || num_labels_ > kMaxLabels) {
    return Status::InvalidArgument(
        StrFormat("num_labels must be in [1, %d], got %d", kMaxLabels,
                  num_labels_));
  }
  const LabelMask universe =
      num_labels_ == kMaxLabels ? ~LabelMask{0}
                                : (LabelMask{1} << num_labels_) - 1;
  for (size_t i = 0; i < posts_.size(); ++i) {
    if (!std::isfinite(posts_[i].value)) {
      // NaN values would poison the sorted-by-value CSR layout (NaN
      // breaks strict weak ordering) and every +-reach window query.
      return Status::InvalidArgument(
          StrFormat("post %zu has a non-finite value", i));
    }
    if (posts_[i].labels == 0) {
      return Status::InvalidArgument(
          StrFormat("post %zu has an empty label set", i));
    }
    if ((posts_[i].labels & ~universe) != 0) {
      return Status::InvalidArgument(
          StrFormat("post %zu has labels outside the %d-label universe", i,
                    num_labels_));
    }
  }

  // Stable sort keeps insertion order among equal values, giving a
  // deterministic total order that refines the dimension order (OPT's
  // "distinct timestamps" assumption is handled by this total order).
  std::stable_sort(
      posts_.begin(), posts_.end(),
      [](const Post& a, const Post& b) { return a.value < b.value; });

  Instance inst;
  inst.posts_ = std::move(posts_);
  posts_.clear();
  inst.posts_.shrink_to_fit();
  inst.num_labels_ = num_labels_;

  // CSR build as a counting sort: one pass to size every LP(a)
  // exactly, prefix-sum into offsets, one pass to fill. No posting
  // list ever reallocates.
  const size_t num_labels = static_cast<size_t>(num_labels_);
  inst.label_offsets_.assign(num_labels + 1, 0);
  for (const Post& p : inst.posts_) {
    ForEachLabel(p.labels,
                 [&](LabelId a) { ++inst.label_offsets_[a + 1]; });
    inst.max_labels_per_post_ =
        std::max(inst.max_labels_per_post_, MaskCount(p.labels));
  }
  for (size_t a = 0; a < num_labels; ++a) {
    inst.label_offsets_[a + 1] += inst.label_offsets_[a];
  }
  const size_t num_pairs = inst.label_offsets_[num_labels];
  inst.label_ids_.resize(num_pairs);
  inst.label_values_.resize(num_pairs);
  std::vector<size_t> cursor(inst.label_offsets_.begin(),
                             inst.label_offsets_.end() - 1);
  for (PostId i = 0; i < inst.posts_.size(); ++i) {
    const Post& p = inst.posts_[i];
    ForEachLabel(p.labels, [&](LabelId a) {
      const size_t at = cursor[a]++;
      inst.label_ids_[at] = i;
      inst.label_values_[at] = p.value;
    });
  }
  return inst;
}

}  // namespace mqd
