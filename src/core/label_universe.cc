#include "core/label_universe.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace mqd {

Result<LabelId> LabelUniverse::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  if (names_.size() >= static_cast<size_t>(kMaxLabels)) {
    return Status::ResourceExhausted(
        StrFormat("label universe is full (max %d labels)", kMaxLabels));
  }
  const LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

Result<LabelId> LabelUniverse::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return Status::NotFound("unknown label: " + std::string(name));
  }
  return it->second;
}

const std::string& LabelUniverse::Name(LabelId id) const {
  MQD_CHECK(id < names_.size()) << "label id out of range: " << id;
  return names_[id];
}

Result<LabelMask> LabelUniverse::InternAll(
    const std::vector<std::string>& names) {
  LabelMask mask = 0;
  for (const std::string& name : names) {
    MQD_ASSIGN_OR_RETURN(LabelId id, Intern(name));
    mask |= MaskOf(id);
  }
  return mask;
}

}  // namespace mqd
