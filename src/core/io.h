#ifndef MQD_CORE_IO_H_
#define MQD_CORE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/instance.h"
#include "util/result.h"
#include "util/status.h"

namespace mqd {

/// Plain-text instance format for reproducible experiments and tooling
/// interop. Line-oriented:
///
///   # comments and blank lines are skipped
///   mqdp 1 <num_labels>
///   post <value> <external_id> <label> [<label> ...]
///
/// Values use max-precision decimal so a round trip is bit-exact.
Status WriteInstance(const Instance& inst, std::ostream& os);
Status WriteInstanceToFile(const Instance& inst, const std::string& path);

Result<Instance> ReadInstance(std::istream& is);
Result<Instance> ReadInstanceFromFile(const std::string& path);

/// Selections (solver output) as one PostId per line with the same
/// comment rules; `# size <n>` header is informative only.
Status WriteSelection(const std::vector<PostId>& selection,
                      std::ostream& os);
Result<std::vector<PostId>> ReadSelection(std::istream& is);

}  // namespace mqd

#endif  // MQD_CORE_IO_H_
