#ifndef MQD_CORE_KERNELS_H_
#define MQD_CORE_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "core/types.h"
#include "util/simd.h"

/// SIMD-dispatched kernels for the solver hot loops (DESIGN.md §15).
///
/// Each kernel is a pure function over flat arrays with a *scalar
/// reference semantics* spelled out below; the AVX2 tier must
/// reproduce that semantics bit-for-bit — same integers, same
/// doubles, same tie-breaks — so the dispatch level can never change
/// a cover, an emission time, or a certified bound. Where a kernel's
/// result is a partition point of a monotone predicate over sorted
/// values, any search strategy (linear, binary, hybrid) is
/// permissible because the result is unique; everywhere else the
/// vector code mirrors the scalar fold exactly (integer arithmetic,
/// or IEEE ops whose reassociation is value-preserving for the
/// NaN-free, fold-monotone inputs the solvers feed in — see
/// tests/simd_kernel_test.cc for the differential battery).
///
/// Dispatch is decided once at startup (util/simd.h): AVX2 when the
/// binary carries it and the CPU supports it, overridable with
/// MQD_SIMD=scalar|avx2. Tests re-point the table via
/// simd::ForceLevelForTest.
namespace mqd::kern {

/// Result of one live-list argmax round (GreedySC SolveLinear).
struct ArgmaxCompactResult {
  size_t size;        // entries kept (gain > 0), order preserved
  PostId best;        // first id attaining the max gain, or kInvalidPost
  int64_t best_gain;  // 0 when best == kInvalidPost
};

/// Scalar semantics:
///   w = 0; best = kInvalidPost; best_gain = 0;
///   for i in [0, n):  p = ids[i]; g = gains[p];
///     if (g <= 0) continue;          // permanently zero: compact away
///     ids[w++] = p;
///     if (g > best_gain) { best_gain = g; best = p; }   // first max wins
using ArgmaxCompactFn = ArgmaxCompactResult (*)(PostId* ids, size_t n,
                                                const int64_t* gains);

/// Index of the first maximum of gains[0..n) if that maximum is > 0,
/// else n (stream window batch argmax; strict > keeps the first).
using ArgmaxDenseFn = size_t (*)(const int64_t* gains, size_t n);

/// Difference-array materialize, fused with the CSR scatter:
///   run = 0;
///   for i in [0, n): run += delta[i]; delta[i] = 0;
///                    if (run != 0) gains[ids[i]] += run;
using MaterializeFn = void (*)(int32_t* delta, size_t n, const PostId* ids,
                               int64_t* gains);

/// Unfused variant: runs[i] = delta[0] + ... + delta[i], zeroing delta.
/// The caller applies the runs through whatever indirection it keeps.
using PrefixRunsFn = void (*)(int32_t* delta, size_t n, int64_t* runs);

/// Half-open position range inside a sorted value array.
struct RunBounds {
  size_t lo;
  size_t hi;
};

/// Membership run of the uniform-lambda Covers test, coveree side:
/// values sorted ascending, element v passes iff fl(v - center) is in
/// [-reach, reach]. Returns the (unique) partition bounds
///   lo = #{v : fl(v - center) < -reach},  hi = #{v : fl(v - center) <= reach}.
using CoverRunFn = RunBounds (*)(const double* values, size_t n,
                                 double center, double reach);

/// Membership run, coverer side (the stream batch-init rule): element
/// v passes iff center lies in [fl(v - reach), fl(v + reach)]:
///   lo = #{v : fl(v + reach) < center},  hi = #{v : fl(v - reach) <= center}.
using CovererRunFn = RunBounds (*)(const double* values, size_t n,
                                   double center, double reach);

/// Sum of byte flags (uncovered-pair count reductions).
using SumU8Fn = uint64_t (*)(const uint8_t* flags, size_t n);

/// Coverage-interval max fold (bounds.cc interval stabbing, uniform):
///   acc = init;
///   for i in [0, n): if (fabs(values[i] - center) <= reach)
///                      acc = max(acc, values[i] + reach);
using MaxCoverEndFn = double (*)(const double* values, size_t n,
                                 double center, double reach, double init);

/// Scan's pick rule (uniform): scan j ascending, stopping at the
/// first values[j] > limit; j passes iff fabs(values[j] - center) <=
/// reach. Returns the last passing j, or kNoIndex when none pass.
/// (Sorted input makes "last passing before the stop" == "last
/// passing with value <= limit".)
using LastCoverFn = size_t (*)(const double* values, size_t n, double center,
                               double reach, double limit);

/// Variable-lambda exact Covers decrement (GreedyState's Select when
/// the model is directional): element i covers the pair at `center`
/// iff fl(values[i] - center) has |.| <= reaches[i] — per-element
/// radii, so the losers are not a contiguous run and every candidate
/// is tested. Scalar semantics:
///   for i in [0, n): if (fabs(values[i] - center) <= reaches[i])
///                      --gains[ids[i]];
/// Decrements are integer and commutative, so any evaluation order is
/// bit-identical; `ids` may repeat (each hit decrements once).
using CoverDecrementFn = void (*)(const double* values,
                                  const double* reaches, size_t n,
                                  double center, const PostId* ids,
                                  int64_t* gains);

inline constexpr size_t kNoIndex = static_cast<size_t>(-1);

struct KernelTable {
  ArgmaxCompactFn argmax_compact;
  ArgmaxDenseFn argmax_dense;
  MaterializeFn materialize;
  PrefixRunsFn prefix_runs;
  CoverRunFn cover_run;
  CovererRunFn coverer_run;
  SumU8Fn sum_u8;
  MaxCoverEndFn max_cover_end;
  LastCoverFn last_cover;
  CoverDecrementFn cover_decrement;
};

/// The table for one specific tier (differential tests run both).
/// Asking for an unavailable tier is a fatal error.
const KernelTable& Table(simd::Level level);

/// The dispatched table (simd::Active(), cached after first use).
const KernelTable& Active();

}  // namespace mqd::kern

#endif  // MQD_CORE_KERNELS_H_
