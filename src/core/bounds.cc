#include "core/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/kernels.h"
#include "core/types.h"

namespace mqd {

namespace internal {

size_t LabelStabbingCount(const Instance& inst, const CoverageModel& model,
                          LabelId a) {
  const std::span<const PostId> posts = inst.label_posts(a);
  const std::span<const DimValue> values = inst.label_values(a);
  const DimValue max_reach = model.MaxReach();
  const bool uniform = model.IsUniform();
  const kern::KernelTable& kt = kern::Active();
  size_t count = 0;
  DimValue covered_until = -std::numeric_limits<DimValue>::infinity();
  for (size_t i = 0; i < posts.size(); ++i) {
    const PostId px = posts[i];
    const DimValue vx = inst.value(px);
    if (vx <= covered_until) continue;
    // px is the leftmost uncovered a-post; any a-post covering it lies
    // within the max-reach window. Take the candidate whose coverage
    // interval extends furthest right (optimal 1-D point cover).
    DimValue best_end = vx + model.Reach(inst, px, a);
    if (uniform) {
      // Constant reach turns the fold into the masked-max kernel over
      // the window's flat value run (same Covers expression, same
      // max fold — max is order-insensitive on these NaN-free values).
      const Instance::IndexRange r =
          inst.LabelRangeBounds(a, vx - max_reach, vx + max_reach);
      best_end = kt.max_cover_end(values.data() + r.begin, r.size(), vx,
                                  max_reach, best_end);
    } else {
      for (PostId z :
           inst.LabelPostsInRange(a, vx - max_reach, vx + max_reach)) {
        if (!model.Covers(inst, z, a, px)) continue;
        best_end =
            std::max(best_end, inst.value(z) + model.Reach(inst, z, a));
      }
    }
    ++count;
    covered_until = best_end;
  }
  return count;
}

}  // namespace internal

namespace {

/// Relative slack applied before rounding the fractional dual value to
/// an integer bound, dominating the float drift of the ascent sums.
constexpr double kDualSafety = 1e-9;

/// Deterministic dual ascent for the set-cover LP dual. Returns the
/// scaled-feasible dual objective (0 when interrupted immediately);
/// sets `*complete` false when the deadline cut the ascent short —
/// the partial dual is still feasible, so the partial objective is
/// still a valid bound.
double DualAscentValue(const Instance& inst, const CoverageModel& model,
                       DeadlineChecker& budget, bool* complete) {
  const size_t n = inst.num_posts();
  const DimValue max_reach = model.MaxReach();
  std::vector<double> load(n, 0.0);          // sum of prices each post packs
  std::vector<LabelMask> frozen(n, 0);       // pairs owned by a tight post
  std::vector<PostId> coverers;
  double objective = 0.0;
  bool interrupted = false;

  for (PostId p = 0; p < n && !interrupted; ++p) {
    const DimValue vp = inst.value(p);
    ForEachLabel(inst.labels(p), [&](LabelId a) {
      if (interrupted || MaskHas(frozen[p], a)) return;
      if (budget.Expired()) {
        interrupted = true;
        return;
      }
      // Candidate coverers of the pair (p, a); p itself always
      // qualifies, so the list is never empty.
      coverers.clear();
      double slack = std::numeric_limits<double>::infinity();
      for (PostId z :
           inst.LabelPostsInRange(a, vp - max_reach, vp + max_reach)) {
        if (!model.Covers(inst, z, a, p)) continue;
        coverers.push_back(z);
        slack = std::min(slack, 1.0 - load[z]);
      }
      const double delta = std::max(0.0, slack);
      objective += delta;
      for (PostId z : coverers) {
        load[z] += delta;
        if (load[z] >= 1.0 - 1e-12) {
          // Tight post: freeze every pair it covers so later pairs
          // stop raising against it.
          const DimValue vz = inst.value(z);
          ForEachLabel(inst.labels(z), [&](LabelId b) {
            const DimValue reach = model.Reach(inst, z, b);
            for (PostId q :
                 inst.LabelPostsInRange(b, vz - reach, vz + reach)) {
              frozen[q] |= MaskOf(b);
            }
          });
        }
      }
    });
  }

  if (interrupted) *complete = false;
  // Feasibility hardening: scale the objective down by the maximum
  // packed load so rounding drift in the ascent can only weaken the
  // bound. Loads never meaningfully exceed 1 by construction; the
  // division is a no-op (max 1.0) up to float noise.
  double max_load = 1.0;
  for (double l : load) max_load = std::max(max_load, l);
  return objective / (max_load * (1.0 + kDualSafety));
}

}  // namespace

LowerBoundReport ComputeLowerBound(const Instance& inst,
                                   const CoverageModel& model,
                                   const Deadline& deadline,
                                   const BoundsConfig& config) {
  LowerBoundReport report;
  if (inst.num_posts() == 0) {
    report.complete = true;
    return report;
  }
  report.nonempty = 1;
  report.best = 1;
  report.complete = true;

  // Counting bound: per-label exact stabbing optima, each selected
  // post credited to at most s labels. One clock read per label: each
  // iteration sweeps a whole posting list, so the poll is cheap
  // relative to the work it guards (and a strided checker would never
  // fire at all on the few-label instances the paper studies).
  DeadlineChecker budget(deadline, /*stride=*/1);
  size_t flood_sum = 0;
  bool flood_complete = true;
  for (LabelId a = 0; a < static_cast<LabelId>(inst.num_labels()); ++a) {
    if (budget.Expired()) {
      flood_complete = false;
      report.complete = false;
      break;
    }
    flood_sum += internal::LabelStabbingCount(inst, model, a);
  }
  if (flood_complete) {
    const size_t s =
        static_cast<size_t>(std::max(1, inst.max_labels_per_post()));
    report.label_flood = (flood_sum + s - 1) / s;
    report.best = std::max(report.best, report.label_flood);
  }

  // LP-relaxation bound via dual ascent. A partial ascent is still
  // dual-feasible, so an interrupted value stays usable.
  if (config.use_lp_dual && !budget.Expired()) {
    DeadlineChecker lp_budget(deadline, /*stride=*/64);
    report.lp_dual_value =
        DualAscentValue(inst, model, lp_budget, &report.complete);
    report.lp_dual = static_cast<size_t>(
        std::ceil(report.lp_dual_value - kDualSafety));
    report.best = std::max(report.best, report.lp_dual);
  } else if (config.use_lp_dual) {
    report.complete = false;
  }
  return report;
}

}  // namespace mqd
