#include "core/coverage.h"

#include "util/logging.h"

namespace mqd {

UniformLambda::UniformLambda(DimValue lambda) : lambda_(lambda) {
  MQD_CHECK(lambda >= 0.0) << "lambda must be non-negative";
}

VariableLambda::VariableLambda(std::vector<std::vector<DimValue>> reaches,
                               DimValue max_reach)
    : reaches_(std::move(reaches)), max_reach_(max_reach) {
  MQD_CHECK(max_reach >= 0.0);
}

DimValue VariableLambda::Reach(const Instance& inst, PostId coverer,
                               LabelId a) const {
  MQD_DCHECK(coverer < reaches_.size());
  const LabelMask mask = inst.labels(coverer);
  MQD_DCHECK(MaskHas(mask, a));
  // Position of `a` among the set bits of `mask`.
  const LabelMask below = mask & (MaskOf(a) - 1);
  const int pos = MaskCount(below);
  MQD_DCHECK(static_cast<size_t>(pos) < reaches_[coverer].size());
  return reaches_[coverer][static_cast<size_t>(pos)];
}

}  // namespace mqd
