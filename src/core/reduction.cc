#include "core/reduction.h"

#include <cstdlib>

#include "util/string_util.h"

namespace mqd {

namespace {

Status Validate(const CnfFormula& formula) {
  if (formula.num_vars <= 0) {
    return Status::InvalidArgument("formula needs at least one variable");
  }
  if (formula.clauses.empty()) {
    return Status::InvalidArgument("formula needs at least one clause");
  }
  for (const std::vector<int>& clause : formula.clauses) {
    if (clause.empty()) {
      return Status::InvalidArgument("empty clause");
    }
    for (int lit : clause) {
      if (lit == 0 || std::abs(lit) > formula.num_vars) {
        return Status::InvalidArgument(StrFormat("bad literal %d", lit));
      }
    }
  }
  return Status::OK();
}

bool ClauseHas(const std::vector<int>& clause, int lit) {
  for (int l : clause) {
    if (l == lit) return true;
  }
  return false;
}

}  // namespace

Result<ReductionOutput> BuildCnfReduction(const CnfFormula& formula) {
  MQD_RETURN_NOT_OK(Validate(formula));
  const int n = formula.num_vars;
  const int m = static_cast<int>(formula.clauses.size());
  const int num_labels = 3 * n + m;
  if (num_labels > kMaxLabels) {
    return Status::ResourceExhausted(
        StrFormat("reduction needs %d labels (max %d)", num_labels,
                  kMaxLabels));
  }

  // Label ids: w_i, u_i, ubar_i packed per variable, then c_j.
  const auto w = [](int i) { return static_cast<LabelId>(3 * (i - 1)); };
  const auto u = [](int i) { return static_cast<LabelId>(3 * (i - 1) + 1); };
  const auto ub = [](int i) { return static_cast<LabelId>(3 * (i - 1) + 2); };
  const auto c = [n](int j) {
    return static_cast<LabelId>(3 * n + (j - 1));
  };

  InstanceBuilder builder(num_labels);
  for (int i = 1; i <= n; ++i) {
    // (i) time 1 and (ii) time 2m+3: {u_i, w_i} and {ubar_i, w_i}.
    builder.Add(1.0, MaskOf(u(i)) | MaskOf(w(i)));
    builder.Add(1.0, MaskOf(ub(i)) | MaskOf(w(i)));
    builder.Add(2.0 * m + 3.0, MaskOf(u(i)) | MaskOf(w(i)));
    builder.Add(2.0 * m + 3.0, MaskOf(ub(i)) | MaskOf(w(i)));
    // (iii) even times 2j: singleton {u_i} and {ubar_i}.
    for (int j = 1; j <= m + 1; ++j) {
      builder.Add(2.0 * j, MaskOf(u(i)));
      builder.Add(2.0 * j, MaskOf(ub(i)));
    }
    // (iv)/(v) odd times 2j+1: U_ij / Ubar_ij depending on whether
    // clause C_j contains x_i / not-x_i.
    for (int j = 1; j <= m; ++j) {
      const std::vector<int>& clause =
          formula.clauses[static_cast<size_t>(j - 1)];
      LabelMask pos = MaskOf(u(i));
      if (ClauseHas(clause, i)) pos |= MaskOf(c(j));
      builder.Add(2.0 * j + 1.0, pos);
      LabelMask neg = MaskOf(ub(i));
      if (ClauseHas(clause, -i)) neg |= MaskOf(c(j));
      builder.Add(2.0 * j + 1.0, neg);
    }
  }

  ReductionOutput out{Instance{}, /*lambda=*/1.0,
                      static_cast<size_t>(n) *
                          static_cast<size_t>(2 * m + 3)};
  MQD_ASSIGN_OR_RETURN(out.instance, builder.Build());
  return out;
}

namespace {

/// Finds the unique post with this exact (value, mask); the gadget
/// never repeats a (time, label-set) combination.
Result<PostId> FindPost(const Instance& inst, DimValue value,
                        LabelMask mask) {
  for (PostId p = inst.LowerBound(value); p < inst.num_posts(); ++p) {
    if (inst.value(p) > value) break;
    if (inst.labels(p) == mask) return p;
  }
  return Status::NotFound(
      StrFormat("no gadget post at t=%g with the requested labels", value));
}

}  // namespace

Result<std::vector<PostId>> BuildAssignmentCover(
    const CnfFormula& formula, const std::vector<bool>& assignment,
    const Instance& instance) {
  MQD_RETURN_NOT_OK(Validate(formula));
  const int n = formula.num_vars;
  const int m = static_cast<int>(formula.clauses.size());
  if (assignment.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument("assignment size mismatch");
  }
  const auto w = [](int i) { return static_cast<LabelId>(3 * (i - 1)); };
  const auto u = [](int i) { return static_cast<LabelId>(3 * (i - 1) + 1); };
  const auto ub = [](int i) { return static_cast<LabelId>(3 * (i - 1) + 2); };
  const auto c = [n](int j) {
    return static_cast<LabelId>(3 * n + (j - 1));
  };

  std::vector<PostId> out;
  for (int i = 1; i <= n; ++i) {
    // With f(x_i) = 1 the cover tracks the u_i chain (whose odd posts
    // carry the c_j labels of clauses containing x_i); with f(x_i) = 0
    // it tracks the ubar_i chain.
    const bool truth = assignment[static_cast<size_t>(i - 1)];
    const LabelId chain = truth ? u(i) : ub(i);
    const LabelId other = truth ? ub(i) : u(i);
    PostId p = kInvalidPost;
    MQD_ASSIGN_OR_RETURN(p,
                         FindPost(instance, 1.0, MaskOf(chain) | MaskOf(w(i))));
    out.push_back(p);
    MQD_ASSIGN_OR_RETURN(
        p, FindPost(instance, 2.0 * m + 3.0, MaskOf(chain) | MaskOf(w(i))));
    out.push_back(p);
    for (int j = 1; j <= m + 1; ++j) {
      MQD_ASSIGN_OR_RETURN(p, FindPost(instance, 2.0 * j, MaskOf(other)));
      out.push_back(p);
    }
    for (int j = 1; j <= m; ++j) {
      const std::vector<int>& clause =
          formula.clauses[static_cast<size_t>(j - 1)];
      LabelMask mask = MaskOf(chain);
      if (ClauseHas(clause, truth ? i : -i)) mask |= MaskOf(c(j));
      MQD_ASSIGN_OR_RETURN(p, FindPost(instance, 2.0 * j + 1.0, mask));
      out.push_back(p);
    }
  }
  return out;
}

bool IsSatisfiable(const CnfFormula& formula) {
  const int n = formula.num_vars;
  for (uint64_t bits = 0; bits < (uint64_t{1} << n); ++bits) {
    bool all = true;
    for (const std::vector<int>& clause : formula.clauses) {
      bool sat = false;
      for (int lit : clause) {
        const int var = std::abs(lit);
        const bool val = (bits >> (var - 1)) & 1;
        if ((lit > 0) == val) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

}  // namespace mqd
