#ifndef MQD_CORE_COVER_STATS_H_
#define MQD_CORE_COVER_STATS_H_

#include <vector>

#include "core/coverage.h"
#include "core/instance.h"

namespace mqd {

/// Descriptive statistics of a cover, used by the evaluation harness
/// and the examples to talk about result quality beyond raw size.
struct CoverStats {
  size_t instance_posts = 0;
  size_t selected_posts = 0;
  /// selected / posts: the feed-shrink factor users experience.
  double compression = 0.0;
  /// Selected posts per label (size num_labels).
  std::vector<size_t> per_label_selected;
  /// Relevant posts per label (size num_labels).
  std::vector<size_t> per_label_posts;
  /// Mean |F(post) - F(nearest selected same-label post)| over all
  /// (post, label) pairs: how far a reader is from a representative.
  double mean_distance_to_representative = 0.0;
  /// Max over pairs of that distance.
  double max_distance_to_representative = 0.0;
  /// L1 distance between the label distribution of the selection and
  /// of the instance (0 = perfectly proportional representation,
  /// 2 = disjoint). The Section-6 proportionality metric.
  double label_distribution_l1 = 0.0;
};

/// Computes stats; `selected` need not be a valid cover (distances are
/// +inf-free: pairs with no same-label representative are skipped and
/// counted in `uncovered_pairs`).
CoverStats ComputeCoverStats(const Instance& inst,
                             const std::vector<PostId>& selected);

/// Proportionality of picks across equal-width value buckets: the L1
/// distance between the bucketed distribution of all posts and of the
/// selection (Section 6's time-axis proportionality, 0 = perfectly
/// proportional).
double BucketDistributionL1(const Instance& inst,
                            const std::vector<PostId>& selected,
                            int num_buckets);

}  // namespace mqd

#endif  // MQD_CORE_COVER_STATS_H_
