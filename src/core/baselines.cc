#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/solver.h"
#include "core/verifier.h"
#include "util/logging.h"

namespace mqd {

std::vector<PostId> MaxMinDispersion(const Instance& inst, size_t k) {
  const size_t n = inst.num_posts();
  std::vector<PostId> selected;
  if (n == 0 || k == 0) return selected;
  k = std::min(k, n);

  // Start from the earliest post (any extreme point works for the
  // 2-approximation).
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  PostId next = 0;
  while (selected.size() < k) {
    selected.push_back(next);
    if (selected.size() == k) break;
    // Update distances and pick the farthest post.
    const double picked_value = inst.value(next);
    PostId farthest = kInvalidPost;
    double best = -1.0;
    for (PostId p = 0; p < n; ++p) {
      min_dist[p] =
          std::min(min_dist[p], std::fabs(inst.value(p) - picked_value));
      if (min_dist[p] > best) {
        best = min_dist[p];
        farthest = p;
      }
    }
    if (farthest == kInvalidPost || best <= 0.0) break;  // all coincide
    next = farthest;
  }
  internal::CanonicalizeSelection(&selected);
  return selected;
}

std::vector<PostId> TopKNewest(const Instance& inst, size_t k) {
  const size_t n = inst.num_posts();
  k = std::min(k, n);
  std::vector<PostId> selected;
  selected.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    selected.push_back(static_cast<PostId>(n - 1 - i));
  }
  internal::CanonicalizeSelection(&selected);
  return selected;
}

std::vector<PostId> UniformGrid(const Instance& inst, size_t k) {
  const size_t n = inst.num_posts();
  std::vector<PostId> selected;
  if (n == 0 || k == 0) return selected;
  k = std::min(k, n);
  const double lo = inst.min_value();
  const double hi = inst.max_value();
  for (size_t i = 0; i < k; ++i) {
    const double target =
        k == 1 ? (lo + hi) / 2.0
               : lo + (hi - lo) * static_cast<double>(i) /
                          static_cast<double>(k - 1);
    // Closest post to the grid point.
    PostId at = inst.LowerBound(target);
    if (at == n) {
      at = static_cast<PostId>(n - 1);
    } else if (at > 0 && target - inst.value(at - 1) <
                             inst.value(at) - target) {
      at = at - 1;
    }
    selected.push_back(at);
  }
  internal::CanonicalizeSelection(&selected);
  return selected;
}

std::vector<PostId> LabelRoundRobin(const Instance& inst, size_t k) {
  const size_t n = inst.num_posts();
  std::vector<PostId> selected;
  if (n == 0 || k == 0) return selected;
  k = std::min(k, n);
  std::vector<bool> taken(n, false);
  // Per-label cursor walking each list from newest to oldest.
  std::vector<size_t> cursor(static_cast<size_t>(inst.num_labels()), 0);
  size_t picked = 0;
  bool progressed = true;
  while (picked < k && progressed) {
    progressed = false;
    for (LabelId a = 0; a < static_cast<LabelId>(inst.num_labels()) &&
                        picked < k;
         ++a) {
      const std::span<const PostId> posts = inst.label_posts(a);
      size_t& c = cursor[a];
      while (c < posts.size() && taken[posts[posts.size() - 1 - c]]) ++c;
      if (c >= posts.size()) continue;
      const PostId p = posts[posts.size() - 1 - c];
      taken[p] = true;
      selected.push_back(p);
      ++picked;
      ++c;
      progressed = true;
    }
  }
  internal::CanonicalizeSelection(&selected);
  return selected;
}

double UncoveredPairFraction(const Instance& inst,
                             const CoverageModel& model,
                             const std::vector<PostId>& selected) {
  if (inst.num_pairs() == 0) return 0.0;
  return static_cast<double>(
             FindUncoveredPairs(inst, model, selected).size()) /
         static_cast<double>(inst.num_pairs());
}

}  // namespace mqd
