#ifndef MQD_CORE_DEGRADE_H_
#define MQD_CORE_DEGRADE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/solver.h"

namespace mqd {

/// The answer of a DegradingSolver run: which ladder rung produced the
/// cover and what happened on the rungs above it.
struct DegradeOutcome {
  std::vector<PostId> cover;   // always a valid lambda-cover
  std::string rung;            // name of the rung that answered
  size_t rung_index = 0;       // 0 = first choice
  bool degraded = false;       // rung_index > 0 or trivial fallback
  /// Status of each rung that was tried and failed, in order.
  std::vector<Status> failures;
  double elapsed_seconds = 0.0;
  /// Set when the answering rung was a CertifyingSolver (the
  /// WithCertified ladder): a proven optimality certificate
  /// lower_bound <= |OPT| <= cover.size() with gap = the difference.
  bool certified = false;
  size_t lower_bound = 0;
  size_t certified_gap = 0;
  bool proven_optimal = false;
};

/// Policy solver implementing the degradation ladder: try each rung
/// under the remaining budget and, when a rung exhausts the deadline
/// (or fails for any other reason), fall through to the next cheaper
/// one. The implicit last rung returns the trivial all-posts cover,
/// which is always a valid lambda-cover (every post covers itself for
/// each of its labels), so Solve is total: it can time out only if the
/// caller's deadline machinery itself is broken.
///
/// The default ladder is GreedySC -> Scan+ -> Scan -> trivial. Callers
/// wanting the exact answer first prepend OPT via `WithOpt`. Every
/// successful non-first rung increments
/// mqd_robust_degraded_total{rung}; every rung failure caused by the
/// deadline increments mqd_robust_deadline_expired_total.
class DegradingSolver final : public Solver {
 public:
  /// The default ladder (GreedySC -> Scan+ -> Scan).
  DegradingSolver();

  /// A custom ladder, tried in order (test seam; also how WithOpt is
  /// built). Rungs must be non-null. The trivial rung is always
  /// appended implicitly.
  explicit DegradingSolver(std::vector<std::unique_ptr<Solver>> rungs);

  /// OPT -> GreedySC -> Scan+ -> Scan (the exact-first ladder).
  static std::unique_ptr<DegradingSolver> WithOpt();

  /// BnB-certified -> GreedySC -> Scan+ -> Scan: the quality-certified
  /// serving ladder. The top rung is anytime — under a budget it
  /// answers with GreedySC's cover plus a proven gap certificate
  /// rather than failing — so it only falls through when even the
  /// warm start cannot finish; DegradeOutcome then carries the
  /// certificate fields. `max_nodes` caps the search (the
  /// deterministic anytime knob; see BranchBoundConfig).
  static std::unique_ptr<DegradingSolver> WithCertified(
      uint64_t max_nodes = 50'000'000);

  std::string_view name() const override { return "Degrading"; }

  Result<std::vector<PostId>> Solve(
      const Instance& inst, const CoverageModel& model) const override;

  Result<std::vector<PostId>> SolveWithBudget(
      const Instance& inst, const CoverageModel& model,
      const Deadline& deadline) const override;

  /// Full-fidelity entry point: the rung taken, per-rung failures and
  /// wall time alongside the cover.
  DegradeOutcome SolveDegrading(const Instance& inst,
                                const CoverageModel& model,
                                const Deadline& deadline) const;

 private:
  std::vector<std::unique_ptr<Solver>> rungs_;
};

namespace internal {
/// The implicit bottom rung: every post selected. Always a valid
/// lambda-cover.
std::vector<PostId> TrivialCover(const Instance& inst);
}  // namespace internal

}  // namespace mqd

#endif  // MQD_CORE_DEGRADE_H_
