#ifndef MQD_CORE_VERIFIER_H_
#define MQD_CORE_VERIFIER_H_

#include <vector>

#include "core/coverage.h"
#include "core/instance.h"
#include "core/types.h"

namespace mqd {

/// A (post, label) pair that no selected post lambda-covers.
struct UncoveredPair {
  PostId post;
  LabelId label;
  bool operator==(const UncoveredPair&) const = default;
};

/// Checks whether `selected` (PostIds into `inst`, any order,
/// duplicates tolerated) is a lambda-cover of the whole instance
/// (Definition 2). Returns all uncovered (post, label) pairs; an empty
/// result means the cover is valid. O(sum_a (|LP(a)| + |Z_a|) log)
/// via per-label sorted merges.
std::vector<UncoveredPair> FindUncoveredPairs(
    const Instance& inst, const CoverageModel& model,
    const std::vector<PostId>& selected);

/// Convenience wrapper: true iff `selected` lambda-covers the
/// instance.
bool IsCover(const Instance& inst, const CoverageModel& model,
             const std::vector<PostId>& selected);

/// Number of (post, label) pairs covered by `selected` (the set-cover
/// objective GreedySC maximizes per pick).
size_t CountCoveredPairs(const Instance& inst, const CoverageModel& model,
                         const std::vector<PostId>& selected);

}  // namespace mqd

#endif  // MQD_CORE_VERIFIER_H_
