#include "core/solver.h"

#include <algorithm>

#include "core/branch_bound.h"
#include "core/greedy_sc.h"
#include "core/opt_dp.h"
#include "core/scan.h"
#include "obs/stack_metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace mqd {

namespace {

/// Decorator recording the mqd_solver_* metric family around Solve.
/// Construction resolves the handles once; Solve itself only touches
/// atomics, so wrapping costs nanoseconds per call.
class InstrumentedSolver : public Solver {
 public:
  explicit InstrumentedSolver(std::unique_ptr<Solver> inner)
      : inner_(std::move(inner)),
        metrics_(obs::SolverMetricsFor(inner_->name())),
        trace_name_("solve:" + std::string(inner_->name())) {}

  std::string_view name() const override { return inner_->name(); }

  Result<std::vector<PostId>> Solve(
      const Instance& inst, const CoverageModel& model) const override {
    return SolveWithBudget(inst, model, Deadline::Unbounded());
  }

  Result<std::vector<PostId>> SolveWithBudget(
      const Instance& inst, const CoverageModel& model,
      const Deadline& deadline) const override {
    obs::TraceSpan span(trace_name_);
    metrics_.instance_posts->Observe(
        static_cast<double>(inst.num_posts()));
    metrics_.last_lambda->Set(model.MaxReach());
    Stopwatch watch;
    Result<std::vector<PostId>> result =
        inner_->SolveWithBudget(inst, model, deadline);
    metrics_.solve_seconds->Observe(watch.ElapsedSeconds());
    metrics_.solves->Increment();
    if (result.ok()) {
      metrics_.cover_size->Observe(static_cast<double>(result->size()));
    } else {
      metrics_.errors->Increment();
    }
    return result;
  }

 private:
  std::unique_ptr<Solver> inner_;
  const obs::SolverMetrics& metrics_;
  std::string trace_name_;
};

}  // namespace

std::string_view SolverKindName(SolverKind kind) {
  switch (kind) {
    case SolverKind::kScan:
      return "Scan";
    case SolverKind::kScanPlus:
      return "Scan+";
    case SolverKind::kGreedySC:
      return "GreedySC";
    case SolverKind::kGreedySCLazy:
      return "GreedySC(lazy)";
    case SolverKind::kOpt:
      return "OPT";
    case SolverKind::kBranchAndBound:
      return "BnB";
  }
  return "?";
}

std::unique_ptr<Solver> WrapSolverWithMetrics(std::unique_ptr<Solver> inner) {
  if (inner == nullptr) return inner;
  if (dynamic_cast<InstrumentedSolver*>(inner.get()) != nullptr) {
    return inner;
  }
  return std::make_unique<InstrumentedSolver>(std::move(inner));
}

std::unique_ptr<Solver> CreateSolver(SolverKind kind) {
  const auto make = [kind]() -> std::unique_ptr<Solver> {
    switch (kind) {
      case SolverKind::kScan:
        return std::make_unique<ScanSolver>();
      case SolverKind::kScanPlus:
        return std::make_unique<ScanPlusSolver>();
      case SolverKind::kGreedySC:
        return std::make_unique<GreedySCSolver>(GreedyEngine::kLinearArgmax);
      case SolverKind::kGreedySCLazy:
        return std::make_unique<GreedySCSolver>(GreedyEngine::kLazyHeap);
      case SolverKind::kOpt:
        return std::make_unique<OptDpSolver>();
      case SolverKind::kBranchAndBound:
        return std::make_unique<BranchAndBoundSolver>();
    }
    MQD_LOG(Fatal) << "unknown solver kind";
    return nullptr;
  };
  return WrapSolverWithMetrics(make());
}

namespace internal {

void CanonicalizeSelection(std::vector<PostId>* selection) {
  std::sort(selection->begin(), selection->end());
  selection->erase(std::unique(selection->begin(), selection->end()),
                   selection->end());
}

}  // namespace internal

}  // namespace mqd
