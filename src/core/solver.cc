#include "core/solver.h"

#include <algorithm>

#include "core/brute_force.h"
#include "core/greedy_sc.h"
#include "core/opt_dp.h"
#include "core/scan.h"
#include "util/logging.h"

namespace mqd {

std::string_view SolverKindName(SolverKind kind) {
  switch (kind) {
    case SolverKind::kScan:
      return "Scan";
    case SolverKind::kScanPlus:
      return "Scan+";
    case SolverKind::kGreedySC:
      return "GreedySC";
    case SolverKind::kGreedySCLazy:
      return "GreedySC(lazy)";
    case SolverKind::kOpt:
      return "OPT";
    case SolverKind::kBranchAndBound:
      return "BnB";
  }
  return "?";
}

std::unique_ptr<Solver> CreateSolver(SolverKind kind) {
  switch (kind) {
    case SolverKind::kScan:
      return std::make_unique<ScanSolver>();
    case SolverKind::kScanPlus:
      return std::make_unique<ScanPlusSolver>();
    case SolverKind::kGreedySC:
      return std::make_unique<GreedySCSolver>(GreedyEngine::kLinearArgmax);
    case SolverKind::kGreedySCLazy:
      return std::make_unique<GreedySCSolver>(GreedyEngine::kLazyHeap);
    case SolverKind::kOpt:
      return std::make_unique<OptDpSolver>();
    case SolverKind::kBranchAndBound:
      return std::make_unique<BranchAndBoundSolver>();
  }
  MQD_LOG(Fatal) << "unknown solver kind";
  return nullptr;
}

namespace internal {

void CanonicalizeSelection(std::vector<PostId>* selection) {
  std::sort(selection->begin(), selection->end());
  selection->erase(std::unique(selection->begin(), selection->end()),
                   selection->end());
}

}  // namespace internal

}  // namespace mqd
