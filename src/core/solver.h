#ifndef MQD_CORE_SOLVER_H_
#define MQD_CORE_SOLVER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/coverage.h"
#include "core/instance.h"
#include "util/deadline.h"
#include "util/result.h"

namespace mqd {

/// A static (offline) MQDP solver: given <P, lambda> it returns a
/// lambda-cover Z of P. Exact solvers return a minimum-cardinality
/// cover; approximate solvers carry a provable bound (see each
/// implementation).
class Solver {
 public:
  virtual ~Solver() = default;

  /// Human-readable algorithm name as the paper uses it ("Scan",
  /// "GreedySC", "OPT", ...).
  virtual std::string_view name() const = 0;

  /// Computes a lambda-cover. The returned PostIds are sorted
  /// ascending and duplicate-free.
  virtual Result<std::vector<PostId>> Solve(
      const Instance& inst, const CoverageModel& model) const = 0;

  /// Budgeted Solve: polls `deadline` at coarse loop boundaries
  /// (greedy round, label sweep, DP step) and unwinds with
  /// kDeadlineExceeded / kCancelled once it trips. With an unbounded
  /// deadline the checks reduce to a dead branch, so the result is
  /// bit-identical to Solve. The base implementation ignores the
  /// budget; solvers with long inner loops override it.
  virtual Result<std::vector<PostId>> SolveWithBudget(
      const Instance& inst, const CoverageModel& model,
      const Deadline& deadline) const {
    (void)deadline;
    return Solve(inst, model);
  }
};

/// The algorithms of Sections 4 (plus exact references used by the
/// evaluation).
enum class SolverKind {
  kScan,         // Algorithm 3
  kScanPlus,     // Scan with cross-label pruning
  kGreedySC,     // Algorithm 2, linear argmax (paper's implementation)
  kGreedySCLazy, // Algorithm 2 with a lazy decreasing-gain heap
  kOpt,          // Algorithm 1 (exact DP; uniform lambda only)
  kBranchAndBound,  // exact branch-and-bound reference
};

std::string_view SolverKindName(SolverKind kind);

/// Factory for the built-in solvers. The returned solver is already
/// wrapped with metrics instrumentation (see WrapSolverWithMetrics).
std::unique_ptr<Solver> CreateSolver(SolverKind kind);

/// Decorates `inner` so every Solve records into the global metrics
/// registry (the mqd_solver_* family of obs/stack_metrics, labeled
/// with the inner solver's name): solve count and latency, instance
/// size, lambda, cover size, error count. Wrapping an already-wrapped
/// solver (or nullptr) returns it unchanged. Benchmarks that want the
/// raw algorithm instantiate the concrete solver classes directly.
std::unique_ptr<Solver> WrapSolverWithMetrics(std::unique_ptr<Solver> inner);

namespace internal {
/// Sorts ascending and removes duplicates in place (the Solver output
/// contract).
void CanonicalizeSelection(std::vector<PostId>* selection);
}  // namespace internal

}  // namespace mqd

#endif  // MQD_CORE_SOLVER_H_
