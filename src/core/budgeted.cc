#include "core/budgeted.h"

#include <algorithm>

#include "core/solver.h"
#include "core/verifier.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace mqd {

Result<BudgetedResult> SolveBudgeted(const Instance& inst,
                                     const CoverageModel& model, size_t k) {
  BudgetedResult result;
  result.total_pairs = inst.num_pairs();
  const size_t n = inst.num_posts();
  if (n == 0 || k == 0) return result;

  std::vector<LabelMask> covered(n, 0);
  std::vector<int64_t> gain(n, 0);
  for (PostId p = 0; p < n; ++p) {
    ForEachLabel(inst.labels(p), [&](LabelId a) {
      const DimValue reach = model.Reach(inst, p, a);
      const DimValue v = inst.value(p);
      gain[p] += static_cast<int64_t>(
          inst.LabelPostsInRange(a, v - reach, v + reach).size());
    });
  }

  const DimValue max_reach = model.MaxReach();
  for (size_t round = 0; round < k; ++round) {
    PostId best = kInvalidPost;
    int64_t best_gain = 0;
    for (PostId p = 0; p < n; ++p) {
      if (gain[p] > best_gain) {
        best_gain = gain[p];
        best = p;
      }
    }
    if (best == kInvalidPost) break;  // everything covered early
    result.selection.push_back(best);
    result.covered_pairs += static_cast<size_t>(best_gain);
    ForEachLabel(inst.labels(best), [&](LabelId a) {
      const LabelMask abit = MaskOf(a);
      const DimValue reach = model.Reach(inst, best, a);
      const DimValue v = inst.value(best);
      for (PostId q : inst.LabelPostsInRange(a, v - reach, v + reach)) {
        if ((covered[q] & abit) != 0) continue;
        covered[q] |= abit;
        const DimValue vq = inst.value(q);
        for (PostId r :
             inst.LabelPostsInRange(a, vq - max_reach, vq + max_reach)) {
          if (model.Covers(inst, r, a, q)) --gain[r];
        }
      }
    });
  }
  internal::CanonicalizeSelection(&result.selection);
  return result;
}

Result<BudgetedResult> SolveBudgetedExact(const Instance& inst,
                                          const CoverageModel& model,
                                          size_t k) {
  const size_t n = inst.num_posts();
  if (n > 24) {
    return Status::InvalidArgument(
        StrFormat("exact budgeted search limited to tiny instances "
                  "(n=%zu)",
                  n));
  }
  BudgetedResult best;
  best.total_pairs = inst.num_pairs();
  if (n == 0 || k == 0) return best;
  k = std::min(k, n);

  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  std::vector<PostId> subset;
  while (true) {
    subset.assign(idx.begin(), idx.end());
    const size_t covered = CountCoveredPairs(inst, model, subset);
    if (covered > best.covered_pairs) {
      best.covered_pairs = covered;
      best.selection = subset;
    }
    size_t i = k;
    while (i > 0 && idx[i - 1] == n - k + i - 1) --i;
    if (i == 0) break;
    ++idx[i - 1];
    for (size_t j = i; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
  return best;
}

}  // namespace mqd
