#include "core/opt_dp.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "util/deadline.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace mqd {

namespace {

// Augmented post index: 0 is the virtual initial post P0 carrying all
// labels, placed more than lambda before the first real post; real
// post with PostId p has augmented index p + 1.
using AugId = uint32_t;

constexpr AugId kInherit = std::numeric_limits<AugId>::max();

// An end-pattern: for each label, the augmented index of the latest
// selected post carrying it.
using Pattern = std::vector<AugId>;

struct PatternHash {
  size_t operator()(const Pattern& p) const {
    uint64_t h = 1469598103934665603ULL;  // FNV-1a
    for (AugId x : p) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

struct Node {
  Pattern pattern;
  uint32_t card;
  uint32_t parent;  // index into the previous level's node vector
};

class OptDp {
 public:
  OptDp(const Instance& inst, DimValue lambda, const OptConfig& config)
      : inst_(inst), lambda_(lambda), config_(config) {
    const int num_labels = inst.num_labels();
    n_ = inst.num_posts();
    values_.resize(n_ + 1);
    labels_.resize(n_ + 1);
    values_[0] = inst.min_value() - 2.0 * lambda - 1.0;
    labels_[0] = num_labels == kMaxLabels ? ~LabelMask{0}
                                          : (LabelMask{1} << num_labels) - 1;
    for (size_t i = 0; i < n_; ++i) {
      values_[i + 1] = inst.value(static_cast<PostId>(i));
      labels_[i + 1] = inst.labels(static_cast<PostId>(i));
    }
    // f[j]: largest augmented index whose value is <= v[j] + lambda.
    f_.resize(n_ + 1);
    for (size_t j = 0; j <= n_; ++j) {
      auto it = std::upper_bound(values_.begin(), values_.end(),
                                 values_[j] + lambda);
      f_[j] = static_cast<AugId>((it - values_.begin()) - 1);
    }
    // Per-label posting lists over augmented indices (excluding the
    // virtual post, which is never a candidate), and last_le[a][j] =
    // largest augmented a-post index <= j (0 when only P0 qualifies).
    lp_.assign(static_cast<size_t>(num_labels), {});
    last_le_.assign(static_cast<size_t>(num_labels),
                    std::vector<AugId>(n_ + 1, 0));
    for (int a = 0; a < num_labels; ++a) {
      AugId last = 0;
      for (size_t j = 1; j <= n_; ++j) {
        if (MaskHas(labels_[j], static_cast<LabelId>(a))) {
          lp_[static_cast<size_t>(a)].push_back(static_cast<AugId>(j));
          last = static_cast<AugId>(j);
        }
        last_le_[static_cast<size_t>(a)][j] = last;
      }
    }
  }

  Result<std::vector<PostId>> Run(const Deadline& deadline) {
    if (n_ == 0) return std::vector<PostId>{};
    const size_t num_labels = static_cast<size_t>(inst_.num_labels());
    // Inner checker shared across Steps: ~one clock read per 8192
    // examined transitions (candidate x predecessor pairs, the true
    // unit of work) keeps polling invisible while bounding the budget
    // overshoot to one stride of transitions.
    DeadlineChecker budget(deadline, /*stride=*/8192);

    levels_.clear();
    levels_.reserve(n_ + 1);
    levels_.push_back(
        {Node{Pattern(num_labels, 0), /*card=*/1, /*parent=*/0}});

    for (size_t j = 1; j <= n_; ++j) {
      MQD_RETURN_NOT_OK(deadline.Check("OPT"));
      MQD_RETURN_NOT_OK(Step(j, budget));
      if (levels_.back().empty()) {
        return Status::Internal(
            StrFormat("OPT: no feasible end-pattern at position %zu", j));
      }
    }

    // Best final pattern; backtrack collecting the posts added at each
    // step (the distinct pattern entries beyond f(j-1)).
    const std::vector<Node>& last = levels_.back();
    size_t best = 0;
    for (size_t k = 1; k < last.size(); ++k) {
      if (last[k].card < last[best].card) best = k;
    }
    std::vector<PostId> out;
    size_t node_idx = best;
    for (size_t j = n_; j >= 1; --j) {
      const Node& node = levels_[j][node_idx];
      const AugId boundary = f_[j - 1];
      for (AugId x : node.pattern) {
        if (x > boundary) out.push_back(static_cast<PostId>(x - 1));
      }
      node_idx = node.parent;
    }
    internal::CanonicalizeSelection(&out);
    MQD_CHECK(out.size() + 1 == last[best].card)
        << "OPT reconstruction mismatch: " << out.size() + 1
        << " vs " << last[best].card;
    return out;
  }

 private:
  Status Step(size_t j, DeadlineChecker& budget) {
    const size_t num_labels = static_cast<size_t>(inst_.num_labels());
    const LabelMask lj = labels_[j];

    // Candidate entries per label: every a-post within the
    // [v_j - lambda, v_j + lambda] window, plus "inherit from the
    // previous pattern" when a is not in label(P_j).
    std::vector<std::vector<AugId>> ppl(num_labels);
    size_t product = 1;
    for (size_t a = 0; a < num_labels; ++a) {
      const std::vector<AugId>& list = lp_[a];
      auto first = std::lower_bound(
          list.begin(), list.end(), values_[j] - lambda_,
          [this](AugId id, DimValue x) { return values_[id] < x; });
      for (auto it = first;
           it != list.end() && values_[*it] <= values_[j] + lambda_; ++it) {
        ppl[a].push_back(*it);
      }
      if (!MaskHas(lj, static_cast<LabelId>(a))) ppl[a].push_back(kInherit);
      if (ppl[a].empty()) {
        return Status::Internal("OPT: empty candidate list");
      }
      product *= ppl[a].size();
      if (product > config_.max_candidates_per_step) {
        return Status::ResourceExhausted(StrFormat(
            "OPT: candidate product exceeds %zu at position %zu "
            "(reduce lambda, |L| or the interval)",
            config_.max_candidates_per_step, j));
      }
    }

    const std::vector<Node>& prev = levels_[j - 1];
    const AugId boundary = f_[j - 1];

    // The true per-position cost is candidates x predecessors; charge
    // it against the global work budget before doing it.
    transitions_ += static_cast<uint64_t>(product) * prev.size();
    if (transitions_ > config_.max_transitions) {
      return Status::ResourceExhausted(StrFormat(
          "OPT: transition budget %llu exceeded at position %zu",
          static_cast<unsigned long long>(config_.max_transitions), j));
    }

    std::unordered_map<Pattern, uint32_t, PatternHash> index;
    std::vector<Node> level;

    Pattern cand(num_labels, 0);
    Pattern resolved(num_labels, 0);
    std::vector<AugId> fresh;

    // Depth-first enumeration of the candidate product.
    std::vector<size_t> cursor(num_labels, 0);
    while (true) {
      for (size_t a = 0; a < num_labels; ++a) cand[a] = ppl[a][cursor[a]];

      for (uint32_t ei = 0; ei < prev.size(); ++ei) {
        // Poll per *transition*, not per candidate: with few candidates
        // but millions of predecessor states a per-candidate poll can
        // overshoot the budget by a whole position's work (seconds).
        MQD_RETURN_NOT_OK(budget.Check("OPT"));
        const Node& eta = prev[ei];
        // Resolve inherits and check consistency (eta "agrees with"
        // cand on every concrete entry at or before the boundary).
        bool consistent = true;
        for (size_t a = 0; a < num_labels; ++a) {
          if (cand[a] == kInherit) {
            resolved[a] = eta.pattern[a];
          } else {
            if (cand[a] <= boundary && cand[a] != eta.pattern[a]) {
              consistent = false;
              break;
            }
            resolved[a] = cand[a];
          }
        }
        if (!consistent) continue;
        if (!IsValidPattern(resolved, j)) continue;

        fresh.clear();
        for (size_t a = 0; a < num_labels; ++a) {
          if (resolved[a] > boundary) fresh.push_back(resolved[a]);
        }
        std::sort(fresh.begin(), fresh.end());
        fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
        const uint32_t card =
            eta.card + static_cast<uint32_t>(fresh.size());

        auto it = index.find(resolved);
        if (it == index.end()) {
          if (level.size() >= config_.max_states_per_level) {
            return Status::ResourceExhausted(StrFormat(
                "OPT: more than %zu end-patterns at position %zu",
                config_.max_states_per_level, j));
          }
          index.emplace(resolved, static_cast<uint32_t>(level.size()));
          level.push_back(Node{resolved, card, ei});
        } else if (card < level[it->second].card) {
          level[it->second].card = card;
          level[it->second].parent = ei;
        }
      }

      // Advance the product cursor.
      size_t a = 0;
      while (a < num_labels && ++cursor[a] == ppl[a].size()) {
        cursor[a] = 0;
        ++a;
      }
      if (a == num_labels) break;
    }

    levels_.push_back(std::move(level));
    return Status::OK();
  }

  /// j-end-pattern validity (paper conditions (i) and (ii)).
  bool IsValidPattern(const Pattern& xi, size_t j) const {
    const size_t num_labels = xi.size();
    for (size_t b = 0; b < num_labels; ++b) {
      // (i) every label carried by the pattern post xi(b) must have
      // its own end at or after xi(b).
      const LabelMask mask = labels_[xi[b]];
      bool ok = true;
      ForEachLabel(mask, [&](LabelId a) {
        if (a < num_labels && xi[a] < xi[b]) ok = false;
      });
      if (!ok) return false;
      // (ii) no b-post in (v[xi(b)] + lambda, v[j]]: equivalently the
      // last b-post at or before j must be within reach of xi(b).
      const AugId last = last_le_[b][j];
      if (last != 0 && values_[last] > values_[xi[b]] + lambda_) {
        return false;
      }
    }
    return true;
  }

  const Instance& inst_;
  DimValue lambda_;
  OptConfig config_;

  size_t n_ = 0;
  std::vector<DimValue> values_;   // augmented, index 0 = virtual post
  std::vector<LabelMask> labels_;  // augmented
  uint64_t transitions_ = 0;
  std::vector<AugId> f_;
  std::vector<std::vector<AugId>> lp_;
  std::vector<std::vector<AugId>> last_le_;
  std::vector<std::vector<Node>> levels_;
};

}  // namespace

Result<std::vector<PostId>> OptDpSolver::Solve(
    const Instance& inst, const CoverageModel& model) const {
  return SolveWithBudget(inst, model, Deadline::Unbounded());
}

Result<std::vector<PostId>> OptDpSolver::SolveWithBudget(
    const Instance& inst, const CoverageModel& model,
    const Deadline& deadline) const {
  if (!model.IsUniform()) {
    return Status::Unimplemented(
        "OPT requires a uniform lambda; use BranchAndBound for "
        "variable-lambda exact references");
  }
  OptDp dp(inst, model.MaxReach(), config_);
  return dp.Run(deadline);
}

}  // namespace mqd
