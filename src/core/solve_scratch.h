#ifndef MQD_CORE_SOLVE_SCRATCH_H_
#define MQD_CORE_SOLVE_SCRATCH_H_

#include "util/arena.h"
#include "util/logging.h"

namespace mqd {

/// Per-thread reusable solve-lifetime storage. Every transient
/// structure of one solver run — GreedyState's covered/gain/delta
/// arrays, the live-post list, the lazy heap, the selection buffer —
/// bump-allocates out of one thread-local Arena that a Session rewinds
/// when the solve starts. After the first solve of a given size the
/// arena has reached its high-water mark and a steady-state workload
/// (BatchSolver jobs, degradation rungs re-solving the same instance)
/// performs zero heap allocations per solve.
///
/// One Session may be open per thread at a time; solver code must not
/// re-enter SolveWithBudget from inside a live Session's solve (the
/// rewind would free the outer solve's state under it). Solvers that
/// *call* other solvers (BranchAndBound's greedy incumbent, the
/// degradation ladder's rungs) are fine: the inner solve opens its
/// Session after the outer one closed, or never touches the scratch.
class SolveScratch {
 public:
  static SolveScratch& ThreadLocal() {
    static thread_local SolveScratch scratch;
    return scratch;
  }

  /// Scoped solve cycle: rewinds the arena on entry, marks the scratch
  /// free again on exit. Allocations made through arena() stay valid
  /// until the *next* Session begins.
  class Session {
   public:
    explicit Session(SolveScratch& scratch) : scratch_(scratch) {
      MQD_DCHECK(!scratch_.in_solve_);
      scratch_.in_solve_ = true;
      scratch_.arena_.Reset();
    }
    ~Session() { scratch_.in_solve_ = false; }

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    Arena& arena() { return scratch_.arena_; }

   private:
    SolveScratch& scratch_;
  };

  const Arena::Stats& stats() const { return arena_.stats(); }

 private:
  SolveScratch() = default;

  Arena arena_;
  bool in_solve_ = false;
};

}  // namespace mqd

#endif  // MQD_CORE_SOLVE_SCRATCH_H_
