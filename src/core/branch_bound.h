#ifndef MQD_CORE_BRANCH_BOUND_H_
#define MQD_CORE_BRANCH_BOUND_H_

#include <cstdint>

#include "core/bounds.h"
#include "core/solver.h"

namespace mqd {

/// Per-run search statistics of the branch-and-bound solver (the
/// per-node counters the obs layer exports as mqd_gap_*).
struct BranchBoundStats {
  uint64_t nodes = 0;              // search nodes expanded
  uint64_t pruned_by_bound = 0;    // subtrees cut by the residual bound
  uint64_t incumbent_updates = 0;  // times a smaller cover was found
  uint64_t max_depth = 0;          // deepest chosen-set size reached
  bool node_budget_exhausted = false;
  bool interrupted = false;        // deadline or cancel tripped mid-search
};

/// A cover together with a proven optimality certificate:
/// lower_bound <= |OPT| <= upper_bound == cover.size(), so the true
/// optimum lies within `gap` of the answer; gap == 0 means the cover
/// is proven minimum. The certificate is anytime-monotone: a run
/// granted a larger node/time budget never returns a larger gap than
/// a shorter run of the same configuration (the search order is
/// deterministic, so a longer run's incumbent/bound state extends the
/// shorter run's).
struct CertifiedCover {
  std::vector<PostId> cover;   // always a valid lambda-cover
  size_t lower_bound = 0;
  size_t upper_bound = 0;      // == cover.size()
  size_t gap = 0;              // upper_bound - lower_bound
  bool proven_optimal = false;
  LowerBoundReport root_bounds;  // the pre-search bound breakdown
  BranchBoundStats stats;
};

/// Interface for solvers that can attach an optimality certificate to
/// their answer. DegradingSolver probes its rungs for this interface
/// to surface certified gaps through DegradeOutcome.
class CertifyingSolver {
 public:
  virtual ~CertifyingSolver() = default;

  /// Anytime certified solve: never fails on deadline expiry once a
  /// warm-start cover exists — it returns the incumbent plus the best
  /// bound proven so far instead. Fails only when the budget expires
  /// before any cover could be built at all.
  virtual Result<CertifiedCover> SolveCertified(
      const Instance& inst, const CoverageModel& model,
      const Deadline& deadline) const = 0;
};

struct BranchBoundConfig {
  /// Hard cap on expanded search nodes; Solve fails with
  /// ResourceExhausted beyond it, SolveCertified returns the incumbent
  /// with a non-zero gap. Also the deterministic anytime knob: at a
  /// fixed max_nodes the certificate is machine-independent.
  uint64_t max_nodes = 50'000'000;
  /// Compute the LP dual-ascent root bound in addition to the cheap
  /// counting bound (see core/bounds.h).
  bool use_lp_bound = true;
};

/// Exact branch-and-bound solver over the set-cover formulation.
///
/// Branches on the uncovered (post, label) pair with the fewest
/// candidate coverers (one child per candidate — some selected post
/// must cover that pair), seeded with GreedySC's cover as the warm
/// incumbent, bounded at the root by core/bounds.h (LP dual ascent +
/// per-label counting) and at every node by the admissible residual
/// bound ceil(sum_a stab_a(residual) / s). Handles uniform and
/// directional (variable-lambda) coverage alike.
///
/// Exponential in the worst case; exact tier for test oracles,
/// NP-hardness gadgets and offline certification. The Solver entry
/// points fail with ResourceExhausted / kDeadlineExceeded when a
/// budget trips; SolveCertified degrades to a non-zero certified gap
/// instead (anytime behavior).
class BranchAndBoundSolver final : public Solver, public CertifyingSolver {
 public:
  explicit BranchAndBoundSolver(BranchBoundConfig config = {})
      : config_(config) {}
  /// Back-compat convenience: a bare node cap.
  explicit BranchAndBoundSolver(uint64_t max_nodes)
      : config_{.max_nodes = max_nodes} {}

  std::string_view name() const override { return "BnB"; }

  Result<std::vector<PostId>> Solve(const Instance& inst,
                                    const CoverageModel& model) const override;

  /// Deadline is polled every few thousand search nodes.
  Result<std::vector<PostId>> SolveWithBudget(
      const Instance& inst, const CoverageModel& model,
      const Deadline& deadline) const override;

  Result<CertifiedCover> SolveCertified(
      const Instance& inst, const CoverageModel& model,
      const Deadline& deadline) const override;

 private:
  BranchBoundConfig config_;
};

}  // namespace mqd

#endif  // MQD_CORE_BRANCH_BOUND_H_
