#include "core/greedy_sc.h"

#include <cstdint>
#include <queue>
#include <vector>

#include "core/greedy_state.h"
#include "util/logging.h"

namespace mqd {

namespace {

using internal::GreedyState;

struct HeapEntry {
  int64_t gain;
  PostId post;
};

/// Max-heap on gain; ties broken toward the smallest PostId so both
/// engines pick identical sequences (kept deterministic for testing).
struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.post > b.post;
  }
};

Result<std::vector<PostId>> SolveLinear(const Instance& inst,
                                        const CoverageModel& model) {
  GreedyState state(inst, model);
  std::vector<PostId> out;
  while (state.remaining() > 0) {
    PostId best = kInvalidPost;
    int64_t best_gain = 0;
    for (PostId p = 0; p < inst.num_posts(); ++p) {
      if (state.gain(p) > best_gain) {
        best_gain = state.gain(p);
        best = p;
      }
    }
    if (best == kInvalidPost) {
      return Status::Internal("GreedySC stalled with uncovered pairs");
    }
    out.push_back(best);
    state.Select(best);
  }
  return out;
}

Result<std::vector<PostId>> SolveLazyHeap(const Instance& inst,
                                          const CoverageModel& model) {
  GreedyState state(inst, model);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess> heap;
  for (PostId p = 0; p < inst.num_posts(); ++p) {
    if (state.gain(p) > 0) heap.push(HeapEntry{state.gain(p), p});
  }
  std::vector<PostId> out;
  while (state.remaining() > 0) {
    if (heap.empty()) {
      return Status::Internal("GreedySC(lazy) stalled with uncovered pairs");
    }
    const HeapEntry top = heap.top();
    heap.pop();
    const int64_t current = state.gain(top.post);
    if (current != top.gain) {
      // Stale entry: gains only decrease, so re-push with the current
      // value and keep popping.
      if (current > 0) heap.push(HeapEntry{current, top.post});
      continue;
    }
    if (current == 0) continue;
    out.push_back(top.post);
    state.Select(top.post);
  }
  return out;
}

}  // namespace

Result<std::vector<PostId>> GreedySCSolver::Solve(
    const Instance& inst, const CoverageModel& model) const {
  Result<std::vector<PostId>> result =
      engine_ == GreedyEngine::kLinearArgmax ? SolveLinear(inst, model)
                                             : SolveLazyHeap(inst, model);
  if (!result.ok()) return result;
  std::vector<PostId> out = std::move(result).value();
  internal::CanonicalizeSelection(&out);
  return out;
}

}  // namespace mqd
