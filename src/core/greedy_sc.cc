#include "core/greedy_sc.h"

#include <cstdint>
#include <queue>
#include <vector>

#include "core/greedy_state.h"
#include "obs/stack_metrics.h"
#include "util/logging.h"

namespace mqd {

namespace {

using internal::GreedyState;

struct HeapEntry {
  int64_t gain;
  PostId post;
};

/// Max-heap on gain; ties broken toward the smallest PostId so both
/// engines pick identical sequences (kept deterministic for testing).
struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.post > b.post;
  }
};

Result<std::vector<PostId>> SolveLinear(const Instance& inst,
                                        GreedyState& state,
                                        const Deadline& deadline) {
  DeadlineChecker budget(deadline);
  // Live-post list: gains never increase, so a post whose gain hit
  // zero is permanently out of the running and the argmax never needs
  // to revisit it. The list stays ascending (compaction preserves
  // order), so the strict `>` below keeps the serial left-to-right
  // tie-break toward the smallest PostId.
  std::vector<PostId> live;
  live.reserve(inst.num_posts());
  for (PostId p = 0; p < inst.num_posts(); ++p) {
    if (state.gain(p) > 0) live.push_back(p);
  }
  std::vector<PostId> out;
  while (state.remaining() > 0) {
    MQD_RETURN_NOT_OK(budget.Check("GreedySC"));
    PostId best = kInvalidPost;
    int64_t best_gain = 0;
    size_t w = 0;
    for (const PostId p : live) {
      const int64_t g = state.gain(p);
      if (g <= 0) continue;  // permanently zero: compact away
      live[w++] = p;
      if (g > best_gain) {
        best_gain = g;
        best = p;
      }
    }
    live.resize(w);
    if (best == kInvalidPost) {
      return Status::Internal("GreedySC stalled with uncovered pairs");
    }
    out.push_back(best);
    state.Select(best);
  }
  return out;
}

Result<std::vector<PostId>> SolveLazyHeap(const Instance& inst,
                                          GreedyState& state,
                                          const Deadline& deadline) {
  DeadlineChecker budget(deadline);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess> heap;
  for (PostId p = 0; p < inst.num_posts(); ++p) {
    if (state.gain(p) > 0) heap.push(HeapEntry{state.gain(p), p});
  }
  std::vector<PostId> out;
  while (state.remaining() > 0) {
    MQD_RETURN_NOT_OK(budget.Check("GreedySC(lazy)"));
    if (heap.empty()) {
      return Status::Internal("GreedySC(lazy) stalled with uncovered pairs");
    }
    HeapEntry top = heap.top();
    heap.pop();
    const int64_t current = state.gain(top.post);
    if (current == 0) continue;  // dead entry, stale or not: drop it
    if (current != top.gain) {
      // Stale entry: pop-then-test. Stored gains upper-bound true
      // gains (gains only decrease), so when the refreshed entry
      // still beats the stored runner-up it is the exact argmax with
      // the exact tie-break — select it now instead of pushing it
      // just to pop it again.
      top.gain = current;
      if (!heap.empty() && HeapLess{}(top, heap.top())) {
        heap.push(top);
        continue;
      }
    }
    out.push_back(top.post);
    state.Select(top.post);
  }
  return out;
}

}  // namespace

Result<std::vector<PostId>> GreedySCSolver::Solve(
    const Instance& inst, const CoverageModel& model) const {
  return SolveWithBudget(inst, model, Deadline::Unbounded());
}

Result<std::vector<PostId>> GreedySCSolver::SolveWithBudget(
    const Instance& inst, const CoverageModel& model,
    const Deadline& deadline) const {
  GreedyState state(inst, model);
  Result<std::vector<PostId>> result =
      engine_ == GreedyEngine::kLinearArgmax
          ? SolveLinear(inst, state, deadline)
          : SolveLazyHeap(inst, state, deadline);
  const obs::SolverMetrics& metrics = obs::SolverMetricsFor(name());
  metrics.gain_fastpath->Increment(state.fastpath_updates());
  metrics.gain_exact->Increment(state.exact_updates());
  if (!result.ok()) return result;
  std::vector<PostId> out = std::move(result).value();
  internal::CanonicalizeSelection(&out);
  return out;
}

}  // namespace mqd
