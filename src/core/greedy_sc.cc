#include "core/greedy_sc.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/greedy_state.h"
#include "core/kernels.h"
#include "core/solve_scratch.h"
#include "obs/stack_metrics.h"
#include "util/logging.h"

namespace mqd {

namespace {

using internal::GreedyState;

struct HeapEntry {
  int64_t gain;
  PostId post;
};

/// Max-heap on gain; ties broken toward the smallest PostId so both
/// engines pick identical sequences (kept deterministic for testing).
struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.post > b.post;
  }
};

Result<std::vector<PostId>> SolveLinear(const Instance& inst,
                                        GreedyState& state,
                                        const Deadline& deadline,
                                        Arena& arena) {
  DeadlineChecker budget(deadline);
  const kern::KernelTable& kt = kern::Active();
  // Live-post list: gains never increase, so a post whose gain hit
  // zero is permanently out of the running and the argmax never needs
  // to revisit it. The list stays ascending (the kernel's compaction
  // preserves order), so the strict `>` argmax keeps the serial
  // left-to-right tie-break toward the smallest PostId.
  const std::span<PostId> live = arena.AllocSpan<PostId>(inst.num_posts());
  size_t live_size = 0;
  for (PostId p = 0; p < inst.num_posts(); ++p) {
    if (state.gain(p) > 0) live[live_size++] = p;
  }
  const std::span<PostId> out = arena.AllocSpan<PostId>(inst.num_posts());
  size_t out_size = 0;
  // Density-adaptive argmax. While most posts are still live, the
  // compacting scan's ids->gains gather is pure overhead: a dense
  // first-max scan of the whole gain array picks the same post (dead
  // posts hold gain <= 0, so they can never attain the positive max,
  // and "first max" in PostId order is exactly the live list's
  // tie-break toward the smallest PostId). Run dense while live
  // posts outnumber dead ones, refreshing the live list every 32
  // rounds to notice when the density flips; then compact every round.
  const size_t n = inst.num_posts();
  size_t rounds = 0;
  while (state.remaining() > 0) {
    MQD_RETURN_NOT_OK(budget.Check("GreedySC"));
    PostId best = kInvalidPost;
    if (live_size * 2 >= n && (rounds++ % 32) != 0) {
      const size_t at = kt.argmax_dense(state.gains_data(), n);
      if (at < n) best = static_cast<PostId>(at);
    } else {
      const kern::ArgmaxCompactResult round =
          kt.argmax_compact(live.data(), live_size, state.gains_data());
      live_size = round.size;
      best = round.best;
    }
    if (best == kInvalidPost) {
      return Status::Internal("GreedySC stalled with uncovered pairs");
    }
    out[out_size++] = best;
    state.Select(best);
  }
  return std::vector<PostId>(out.begin(), out.begin() + out_size);
}

Result<std::vector<PostId>> SolveLazyHeap(const Instance& inst,
                                          GreedyState& state,
                                          const Deadline& deadline,
                                          Arena& arena) {
  DeadlineChecker budget(deadline);
  // Binary heap over arena storage; std::push_heap/pop_heap run the
  // exact algorithm std::priority_queue would, so the pop sequence —
  // a total order on (gain, post) — is unchanged. Capacity num_posts
  // suffices: each round pops one entry and re-pushes at most one.
  const std::span<HeapEntry> heap = arena.AllocSpan<HeapEntry>(inst.num_posts());
  size_t heap_size = 0;
  for (PostId p = 0; p < inst.num_posts(); ++p) {
    if (state.gain(p) > 0) {
      heap[heap_size++] = HeapEntry{state.gain(p), p};
    }
  }
  std::make_heap(heap.begin(), heap.begin() + heap_size, HeapLess{});
  const std::span<PostId> out = arena.AllocSpan<PostId>(inst.num_posts());
  size_t out_size = 0;
  while (state.remaining() > 0) {
    MQD_RETURN_NOT_OK(budget.Check("GreedySC(lazy)"));
    if (heap_size == 0) {
      return Status::Internal("GreedySC(lazy) stalled with uncovered pairs");
    }
    HeapEntry top = heap[0];
    std::pop_heap(heap.begin(), heap.begin() + heap_size, HeapLess{});
    --heap_size;
    const int64_t current = state.gain(top.post);
    if (current == 0) continue;  // dead entry, stale or not: drop it
    if (current != top.gain) {
      // Stale entry: pop-then-test. Stored gains upper-bound true
      // gains (gains only decrease), so when the refreshed entry
      // still beats the stored runner-up it is the exact argmax with
      // the exact tie-break — select it now instead of pushing it
      // just to pop it again.
      top.gain = current;
      if (heap_size > 0 && HeapLess{}(top, heap[0])) {
        heap[heap_size++] = top;
        std::push_heap(heap.begin(), heap.begin() + heap_size, HeapLess{});
        continue;
      }
    }
    out[out_size++] = top.post;
    state.Select(top.post);
  }
  return std::vector<PostId>(out.begin(), out.begin() + out_size);
}

}  // namespace

Result<std::vector<PostId>> GreedySCSolver::Solve(
    const Instance& inst, const CoverageModel& model) const {
  return SolveWithBudget(inst, model, Deadline::Unbounded());
}

Result<std::vector<PostId>> GreedySCSolver::SolveWithBudget(
    const Instance& inst, const CoverageModel& model,
    const Deadline& deadline) const {
  SolveScratch::Session session(SolveScratch::ThreadLocal());
  Arena& arena = session.arena();
  GreedyState state(inst, model, arena);
  Result<std::vector<PostId>> result =
      engine_ == GreedyEngine::kLinearArgmax
          ? SolveLinear(inst, state, deadline, arena)
          : SolveLazyHeap(inst, state, deadline, arena);
  const obs::SolverMetrics& metrics = obs::SolverMetricsFor(name());
  metrics.gain_fastpath->Increment(state.fastpath_updates());
  metrics.gain_exact->Increment(state.exact_updates());
  if (!result.ok()) return result;
  std::vector<PostId> out = std::move(result).value();
  internal::CanonicalizeSelection(&out);
  return out;
}

}  // namespace mqd
