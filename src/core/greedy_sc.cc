#include "core/greedy_sc.h"

#include <cstdint>
#include <queue>
#include <vector>

#include "util/logging.h"

namespace mqd {

namespace {

struct HeapEntry {
  int64_t gain;
  PostId post;
};

/// Max-heap on gain; ties broken toward the smallest PostId so both
/// engines pick identical sequences (kept deterministic for testing).
struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.post > b.post;
  }
};

class GreedyState {
 public:
  GreedyState(const Instance& inst, const CoverageModel& model)
      : inst_(inst),
        model_(model),
        covered_(inst.num_posts(), 0),
        gain_(inst.num_posts(), 0),
        remaining_(inst.num_pairs()) {
    // Initial gain of post p = |S_p| = number of (q, a) pairs with
    // a in label(p) and q within Reach(p, a) of p.
    for (PostId p = 0; p < inst_.num_posts(); ++p) {
      ForEachLabel(inst_.labels(p), [&](LabelId a) {
        const DimValue reach = model_.Reach(inst_, p, a);
        const DimValue v = inst_.value(p);
        gain_[p] += static_cast<int64_t>(
            inst_.LabelPostsInRange(a, v - reach, v + reach).size());
      });
    }
  }

  int64_t gain(PostId p) const { return gain_[p]; }
  size_t remaining() const { return remaining_; }

  /// Marks everything `p` covers and decrements the gains of every
  /// post whose set loses a pair.
  void Select(PostId p) {
    const DimValue max_reach = model_.MaxReach();
    ForEachLabel(inst_.labels(p), [&](LabelId a) {
      const LabelMask abit = MaskOf(a);
      const DimValue reach = model_.Reach(inst_, p, a);
      const DimValue v = inst_.value(p);
      for (PostId q : inst_.LabelPostsInRange(a, v - reach, v + reach)) {
        if ((covered_[q] & abit) != 0) continue;
        covered_[q] |= abit;
        --remaining_;
        // Every post r that covers (q, a) loses this pair.
        const DimValue vq = inst_.value(q);
        for (PostId r :
             inst_.LabelPostsInRange(a, vq - max_reach, vq + max_reach)) {
          if (model_.Covers(inst_, r, a, q)) --gain_[r];
        }
      }
    });
    MQD_DCHECK(gain_[p] == 0);
  }

 private:
  const Instance& inst_;
  const CoverageModel& model_;
  std::vector<LabelMask> covered_;
  std::vector<int64_t> gain_;
  size_t remaining_;
};

Result<std::vector<PostId>> SolveLinear(const Instance& inst,
                                        const CoverageModel& model) {
  GreedyState state(inst, model);
  std::vector<PostId> out;
  while (state.remaining() > 0) {
    PostId best = kInvalidPost;
    int64_t best_gain = 0;
    for (PostId p = 0; p < inst.num_posts(); ++p) {
      if (state.gain(p) > best_gain) {
        best_gain = state.gain(p);
        best = p;
      }
    }
    if (best == kInvalidPost) {
      return Status::Internal("GreedySC stalled with uncovered pairs");
    }
    out.push_back(best);
    state.Select(best);
  }
  return out;
}

Result<std::vector<PostId>> SolveLazyHeap(const Instance& inst,
                                          const CoverageModel& model) {
  GreedyState state(inst, model);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess> heap;
  for (PostId p = 0; p < inst.num_posts(); ++p) {
    if (state.gain(p) > 0) heap.push(HeapEntry{state.gain(p), p});
  }
  std::vector<PostId> out;
  while (state.remaining() > 0) {
    if (heap.empty()) {
      return Status::Internal("GreedySC(lazy) stalled with uncovered pairs");
    }
    const HeapEntry top = heap.top();
    heap.pop();
    const int64_t current = state.gain(top.post);
    if (current != top.gain) {
      // Stale entry: gains only decrease, so re-push with the current
      // value and keep popping.
      if (current > 0) heap.push(HeapEntry{current, top.post});
      continue;
    }
    if (current == 0) continue;
    out.push_back(top.post);
    state.Select(top.post);
  }
  return out;
}

}  // namespace

Result<std::vector<PostId>> GreedySCSolver::Solve(
    const Instance& inst, const CoverageModel& model) const {
  Result<std::vector<PostId>> result =
      engine_ == GreedyEngine::kLinearArgmax ? SolveLinear(inst, model)
                                             : SolveLazyHeap(inst, model);
  if (!result.ok()) return result;
  std::vector<PostId> out = std::move(result).value();
  internal::CanonicalizeSelection(&out);
  return out;
}

}  // namespace mqd
