#ifndef MQD_CORE_SCAN_H_
#define MQD_CORE_SCAN_H_

#include <vector>

#include "core/solver.h"

namespace mqd {

/// Algorithm Scan (paper Algorithm 3): one forward sweep per label
/// list LP(a), picking for each leftmost-uncovered post the candidate
/// whose coverage extends furthest right. With a uniform lambda this
/// is exactly the paper's "last post within lambda" rule and is
/// optimal per label; the union over labels is an s-approximation
/// where s = max labels per post. Runs in O(sum_a |LP(a)|) for uniform
/// lambda.
///
/// With a variable (directional) lambda the same sweep applies with
/// reach = Reach(candidate, a); it remains a correct cover and
/// coincides with Scan when the reach is constant.
class ScanSolver final : public Solver {
 public:
  std::string_view name() const override { return "Scan"; }
  Result<std::vector<PostId>> Solve(const Instance& inst,
                                    const CoverageModel& model) const override;
};

/// Label processing order for ScanPlus (the optimization is
/// order-sensitive; the paper notes effectiveness "depends on the
/// ordering of the labels processed by Scan").
enum class LabelOrder {
  kById,        // ascending label id (paper default)
  kSizeAsc,     // fewest relevant posts first
  kSizeDesc,    // most relevant posts first
};

/// Algorithm Scan+ : like Scan, but when a post is selected for one
/// label, every (post, label) pair it covers is removed from the lists
/// of labels not yet processed, so later sweeps skip already-covered
/// posts.
class ScanPlusSolver final : public Solver {
 public:
  explicit ScanPlusSolver(LabelOrder order = LabelOrder::kById)
      : order_(order) {}

  std::string_view name() const override { return "Scan+"; }
  Result<std::vector<PostId>> Solve(const Instance& inst,
                                    const CoverageModel& model) const override;

 private:
  LabelOrder order_;
};

}  // namespace mqd

#endif  // MQD_CORE_SCAN_H_
