#ifndef MQD_CORE_SCAN_H_
#define MQD_CORE_SCAN_H_

#include <functional>
#include <vector>

#include "core/solver.h"

namespace mqd {

/// Algorithm Scan (paper Algorithm 3): one forward sweep per label
/// list LP(a), picking for each leftmost-uncovered post the candidate
/// whose coverage extends furthest right. With a uniform lambda this
/// is exactly the paper's "last post within lambda" rule and is
/// optimal per label; the union over labels is an s-approximation
/// where s = max labels per post. Runs in O(sum_a |LP(a)|) for uniform
/// lambda.
///
/// With a variable (directional) lambda the same sweep applies with
/// reach = Reach(candidate, a); it remains a correct cover and
/// coincides with Scan when the reach is constant.
class ScanSolver final : public Solver {
 public:
  std::string_view name() const override { return "Scan"; }
  Result<std::vector<PostId>> Solve(const Instance& inst,
                                    const CoverageModel& model) const override;

  /// Deadline is polled once per label sweep.
  Result<std::vector<PostId>> SolveWithBudget(
      const Instance& inst, const CoverageModel& model,
      const Deadline& deadline) const override;
};

/// Label processing order for ScanPlus (the optimization is
/// order-sensitive; the paper notes effectiveness "depends on the
/// ordering of the labels processed by Scan").
enum class LabelOrder {
  kById,        // ascending label id (paper default)
  kSizeAsc,     // fewest relevant posts first
  kSizeDesc,    // most relevant posts first
};

/// Algorithm Scan+ : like Scan, but when a post is selected for one
/// label, every (post, label) pair it covers is removed from the lists
/// of labels not yet processed, so later sweeps skip already-covered
/// posts.
class ScanPlusSolver final : public Solver {
 public:
  explicit ScanPlusSolver(LabelOrder order = LabelOrder::kById)
      : order_(order) {}

  std::string_view name() const override { return "Scan+"; }
  Result<std::vector<PostId>> Solve(const Instance& inst,
                                    const CoverageModel& model) const override;

  /// Deadline is polled once per label sweep.
  Result<std::vector<PostId>> SolveWithBudget(
      const Instance& inst, const CoverageModel& model,
      const Deadline& deadline) const override;

 private:
  LabelOrder order_;
};

namespace internal {

/// One per-label Scan sweep (the body both solvers share, exposed so
/// the parallel engine reuses the exact serial logic instead of
/// duplicating it). With `covered == nullptr` this is plain Scan:
/// reads only `inst`/`model` and appends picks for label `a` to
/// `out`, so sweeps for different labels may run concurrently. With
/// `covered` non-null this is the Scan+ sweep: posts whose bit for
/// `a` is already set are skipped, and each pick marks everything it
/// covers across all its labels. When `mark` is additionally non-null
/// it replaces the built-in marking loop (the parallel Scan+ path
/// marks ranges concurrently with atomics); it must set exactly the
/// same bits the serial loop would.
void SweepLabel(
    const Instance& inst, const CoverageModel& model, LabelId a,
    std::vector<LabelMask>* covered, std::vector<PostId>* out,
    const std::function<void(PostId picked)>* mark = nullptr);

/// The label processing order ScanPlus uses for a given policy.
std::vector<LabelId> OrderedLabels(const Instance& inst, LabelOrder order);

}  // namespace internal

}  // namespace mqd

#endif  // MQD_CORE_SCAN_H_
