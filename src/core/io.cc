#include "core/io.h"

#include <charconv>
#include <cmath>
#include <optional>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "obs/stack_metrics.h"
#include "util/fault_injection.h"
#include "util/string_util.h"

namespace mqd {

namespace {

constexpr int kFormatVersion = 1;

std::string_view StripComment(std::string_view line) {
  const size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  return Trim(line);
}

}  // namespace

Status WriteInstance(const Instance& inst, std::ostream& os) {
  os << "# MQDP instance (libmqd)\n";
  os << "mqdp " << kFormatVersion << " " << inst.num_labels() << "\n";
  os.precision(17);
  for (PostId p = 0; p < inst.num_posts(); ++p) {
    const Post& post = inst.post(p);
    os << "post " << post.value << " " << post.external_id;
    ForEachLabel(post.labels, [&](LabelId a) { os << " " << a; });
    os << "\n";
  }
  if (!os) return Status::Internal("stream write failed");
  return Status::OK();
}

Status WriteInstanceToFile(const Instance& inst, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::NotFound("cannot open for write: " + path);
  return WriteInstance(inst, file);
}

Result<Instance> ReadInstance(std::istream& is) {
  MQD_FAULT_POINT("io.read_instance");
  // Every rejection of malformed input is counted: a rising
  // mqd_robust_io_rejects_total is the first sign of an upstream feed
  // gone bad.
  const auto reject = [](Status status) -> Status {
    obs::GetRobustMetrics().io_rejects->Increment();
    return status;
  };
  std::string line;
  int num_labels = -1;
  InstanceBuilder* builder = nullptr;
  // Deferred construction: the header fixes the universe size.
  std::optional<InstanceBuilder> storage;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view content = StripComment(line);
    if (content.empty()) continue;
    std::istringstream fields{std::string(content)};
    std::string tag;
    fields >> tag;
    if (tag == "mqdp") {
      int version = 0;
      fields >> version >> num_labels;
      if (!fields || version != kFormatVersion) {
        return reject(Status::InvalidArgument(
            StrFormat("line %zu: bad header", line_no)));
      }
      if (num_labels < 1 || num_labels > kMaxLabels) {
        return reject(Status::InvalidArgument(
            StrFormat("line %zu: num_labels out of range", line_no)));
      }
      storage.emplace(num_labels);
      builder = &*storage;
    } else if (tag == "post") {
      if (builder == nullptr) {
        return reject(Status::InvalidArgument(
            StrFormat("line %zu: post before header", line_no)));
      }
      double value = 0.0;
      uint64_t external_id = 0;
      fields >> value >> external_id;
      if (!fields) {
        return reject(Status::InvalidArgument(
            StrFormat("line %zu: malformed post", line_no)));
      }
      if (!std::isfinite(value)) {
        return reject(Status::InvalidArgument(StrFormat(
            "line %zu: post value must be finite", line_no)));
      }
      LabelMask mask = 0;
      int label = 0;
      while (fields >> label) {
        if (label < 0 || label >= num_labels) {
          return reject(Status::InvalidArgument(
              StrFormat("line %zu: label %d out of range", line_no,
                        label)));
        }
        mask |= MaskOf(static_cast<LabelId>(label));
      }
      if (mask == 0) {
        return reject(Status::InvalidArgument(StrFormat(
            "line %zu: post carries no labels", line_no)));
      }
      builder->Add(value, mask, external_id);
    } else {
      return reject(Status::InvalidArgument(
          StrFormat("line %zu: unknown record '%s'", line_no,
                    tag.c_str())));
    }
  }
  if (builder == nullptr) {
    return reject(Status::InvalidArgument("missing mqdp header"));
  }
  return builder->Build();
}

Result<Instance> ReadInstanceFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open for read: " + path);
  return ReadInstance(file);
}

Status WriteSelection(const std::vector<PostId>& selection,
                      std::ostream& os) {
  os << "# size " << selection.size() << "\n";
  for (PostId p : selection) os << p << "\n";
  if (!os) return Status::Internal("stream write failed");
  return Status::OK();
}

Result<std::vector<PostId>> ReadSelection(std::istream& is) {
  std::vector<PostId> out;
  std::string line;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view content = StripComment(line);
    if (content.empty()) continue;
    uint32_t value = 0;
    const auto [ptr, ec] = std::from_chars(
        content.data(), content.data() + content.size(), value);
    if (ec != std::errc() || ptr != content.data() + content.size()) {
      return Status::InvalidArgument(
          StrFormat("line %zu: malformed post id", line_no));
    }
    out.push_back(value);
  }
  return out;
}

}  // namespace mqd
