#ifndef MQD_CORE_PROPORTIONAL_H_
#define MQD_CORE_PROPORTIONAL_H_

#include <memory>

#include "core/coverage.h"
#include "core/instance.h"
#include "util/result.h"

namespace mqd {

/// How density0 in Equation 2 is computed from the instance.
enum class BaseDensity {
  /// Mean of the per-label densities |LP(a)| / span (the paper's
  /// "average number of posts per minute relevant to any label a in
  /// L", read as a per-label average).
  kPerLabelMean,
  /// Density of posts relevant to at least one label: |P| / span.
  kAnyLabel,
};

/// Parameters of the smooth proportional-diversity formula
/// (Section 6, Equation 2):
///
///   lambda_a(Pi) = lambda0 * exp(1 - density_a(ti - lambda0,
///                                ti + lambda0) / density0)
///
/// where density_a(w) is the per-minute rate of a-posts inside the
/// window and density0 the baseline rate. Dense regions get a smaller
/// lambda (more representatives), sparse regions a larger one, and the
/// exponential keeps rare perspectives represented: lambda is bounded
/// by e * lambda0.
struct ProportionalConfig {
  /// The expert-chosen base threshold lambda0, in dimension units.
  DimValue lambda0 = 60.0;
  /// Dimension units per "minute" for the density rate (60 for the
  /// time dimension in seconds; pick the natural granule for other
  /// dimensions, e.g. 0.1 for sentiment in [-1, 1]).
  DimValue minute = 60.0;
  BaseDensity base = BaseDensity::kPerLabelMean;
};

/// Builds the directional variable-lambda coverage model of Section 6
/// for `inst`. Fails on an empty instance (density0 undefined).
Result<std::unique_ptr<VariableLambda>> ComputeProportionalLambdas(
    const Instance& inst, const ProportionalConfig& config);

/// The raw Equation-2 value for one (post, label) pair; exposed for
/// testing and diagnostics. `density_a` and `density0` are rates in
/// posts per minute.
DimValue ProportionalLambda(DimValue lambda0, double density_a,
                            double density0);

}  // namespace mqd

#endif  // MQD_CORE_PROPORTIONAL_H_
