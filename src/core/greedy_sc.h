#ifndef MQD_CORE_GREEDY_SC_H_
#define MQD_CORE_GREEDY_SC_H_

#include "core/solver.h"

namespace mqd {

/// How GreedySC finds the next post with maximum residual gain.
enum class GreedyEngine {
  /// Re-scan all posts each round (the implementation the paper ships,
  /// Section 7.3: they found heap maintenance more expensive on their
  /// data).
  kLinearArgmax,
  /// Lazy-deletion max-heap. Valid because gains only decrease as
  /// pairs get covered (the objective is submodular), so a popped
  /// entry whose stored gain is stale is simply re-pushed.
  kLazyHeap,
};

/// Algorithm GreedySC (paper Algorithm 2): reduce MQDP to set cover
/// with universe U = {(post, label)} and one set per post (the pairs
/// that post lambda-covers); greedily pick the post covering the most
/// still-uncovered pairs. Approximation ratio ln(|P| |L|) [Feige 98].
class GreedySCSolver final : public Solver {
 public:
  explicit GreedySCSolver(GreedyEngine engine = GreedyEngine::kLinearArgmax)
      : engine_(engine) {}

  std::string_view name() const override {
    return engine_ == GreedyEngine::kLinearArgmax ? "GreedySC"
                                                  : "GreedySC(lazy)";
  }

  Result<std::vector<PostId>> Solve(const Instance& inst,
                                    const CoverageModel& model) const override;

  /// Deadline is polled once per greedy round (one cover element per
  /// round), so a budgeted run stops between selections, never inside
  /// the gain-maintenance hot path.
  Result<std::vector<PostId>> SolveWithBudget(
      const Instance& inst, const CoverageModel& model,
      const Deadline& deadline) const override;

 private:
  GreedyEngine engine_;
};

}  // namespace mqd

#endif  // MQD_CORE_GREEDY_SC_H_
