#ifndef MQD_CORE_OPT_DP_H_
#define MQD_CORE_OPT_DP_H_

#include <cstddef>

#include "core/solver.h"

namespace mqd {

/// Resource guards for the exact DP: the number of end-patterns per
/// position is O(|P|^|L|), so unguarded instances can exhaust memory.
/// The solver fails with ResourceExhausted instead of thrashing.
struct OptConfig {
  /// Maximum number of distinct end-patterns kept at any position.
  size_t max_states_per_level = 2'000'000;
  /// Maximum candidate patterns enumerated at one position.
  size_t max_candidates_per_step = 4'000'000;
  /// Maximum total transitions (candidate x predecessor pairs)
  /// examined over the whole run — the actual work bound, since each
  /// position costs O(candidates * previous-level states).
  uint64_t max_transitions = 2'000'000'000;
};

/// Algorithm OPT (paper Algorithm 1): exact dynamic programming over
/// j-end-patterns.
///
/// The DP sweeps posts in value order keeping, for every feasible
/// end-pattern xi (the per-label index of the latest selected post
/// carrying that label), the minimum cardinality h_{j,xi} of a
/// (lambda, j)-cover with that end-pattern. Transitions extend
/// consistent (j-1)-patterns with the newly selected posts. Time
/// O(|P|^{2|L|+1}); feasible for small |L| and lambda, exactly as the
/// paper reports (Section 7.4: |L| up to 2-3).
///
/// Requires a uniform lambda (the paper notes the variable-lambda
/// adaptation but at reduced efficiency; use BranchAndBoundSolver as
/// the exact reference for directional coverage).
class OptDpSolver final : public Solver {
 public:
  explicit OptDpSolver(OptConfig config = {}) : config_(config) {}

  std::string_view name() const override { return "OPT"; }
  Result<std::vector<PostId>> Solve(const Instance& inst,
                                    const CoverageModel& model) const override;

  /// Deadline is polled per DP position and, inside a position, every
  /// few thousand examined transitions (candidate x predecessor
  /// pairs). Polling per transition — not per candidate pattern —
  /// matters: a position with few candidates but millions of carried
  /// end-patterns would otherwise run an entire position's worth of
  /// work (seconds on adversarial label counts) past the budget.
  Result<std::vector<PostId>> SolveWithBudget(
      const Instance& inst, const CoverageModel& model,
      const Deadline& deadline) const override;

 private:
  OptConfig config_;
};

}  // namespace mqd

#endif  // MQD_CORE_OPT_DP_H_
