#ifndef MQD_CORE_BOUNDS_H_
#define MQD_CORE_BOUNDS_H_

#include <cstddef>
#include <cstdint>

#include "core/coverage.h"
#include "core/instance.h"
#include "util/deadline.h"
#include "util/result.h"

namespace mqd {

/// Certified lower bounds on the minimum lambda-cover size.
///
/// Every field is a *proven* lower bound on |OPT| for the given
/// (instance, coverage model): any reported value v guarantees no
/// lambda-cover with fewer than v posts exists. The bounds are
/// computed cheapest-first over the CSR posting-list layout so a
/// deadline can cut the computation off after any method and still
/// leave `best` valid (just weaker).
///
/// Methods, in computation order:
///
///  * `nonempty`    — 1 when the instance has any post (0 otherwise).
///  * `label_flood` — ceil(sum_a stab(a) / s). stab(a) is the minimum
///    number of a-carrying posts needed to cover LP(a) alone (exact:
///    interval point-cover greedy per label, valid for directional
///    reaches too), and s = max labels per post; a selected post can
///    contribute to at most s of the per-label requirements. This is
///    the counting argument behind Scan's s-approximation, run in
///    reverse as a bound.
///  * `lp_dual`     — a feasible solution to the dual of the
///    set-cover LP relaxation (universe = (post, label) pairs, one
///    set per post), built by deterministic dual ascent: each still-
///    uncovered pair raises its dual price until some candidate
///    coverer's packing constraint goes tight, and tight posts freeze
///    the pairs they cover. By weak LP duality the dual objective is
///    <= LP-OPT <= |OPT|. The raw objective is re-checked against
///    freshly recomputed per-post loads and scaled down by the
///    maximum load before rounding, so floating-point drift can only
///    make the reported integer bound *weaker*, never unsound.
struct LowerBoundReport {
  size_t best = 0;         // max over all completed methods
  size_t nonempty = 0;     // trivial bound
  size_t label_flood = 0;  // per-label stabbing / s counting bound
  size_t lp_dual = 0;      // rounded dual-feasible LP value
  double lp_dual_value = 0.0;  // fractional dual objective (scaled)
  /// False when the deadline expired before every method finished;
  /// `best` is still a valid (weaker) bound.
  bool complete = false;
};

struct BoundsConfig {
  /// Skip the dual-ascent LP bound (the label_flood bound is ~10x
  /// cheaper and often close on low-overlap instances).
  bool use_lp_dual = true;
};

/// Computes the report above. Never fails on deadline expiry — the
/// bounds degrade instead (see LowerBoundReport::complete); the only
/// errors are invalid-instance conditions, which cannot occur for a
/// Build()-produced Instance.
LowerBoundReport ComputeLowerBound(const Instance& inst,
                                   const CoverageModel& model,
                                   const Deadline& deadline,
                                   const BoundsConfig& config = {});

namespace internal {

/// stab(a): minimum number of a-carrying posts covering LP(a)
/// (optimal 1-D interval point cover, exact under directional
/// reaches). Exposed for tests and the branch-and-bound residual
/// bound.
size_t LabelStabbingCount(const Instance& inst, const CoverageModel& model,
                          LabelId a);

}  // namespace internal

}  // namespace mqd

#endif  // MQD_CORE_BOUNDS_H_
