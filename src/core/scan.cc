#include "core/scan.h"

#include <algorithm>
#include <numeric>

#include "core/kernels.h"
#include "util/logging.h"

namespace mqd {

namespace internal {

void SweepLabel(const Instance& inst, const CoverageModel& model, LabelId a,
                std::vector<LabelMask>* covered, std::vector<PostId>* out,
                const std::function<void(PostId picked)>* mark) {
  const std::span<const PostId> posts = inst.label_posts(a);
  const std::span<const DimValue> values = inst.label_values(a);
  const DimValue max_reach = model.MaxReach();
  const LabelMask abit = MaskOf(a);
  const bool uniform = model.IsUniform();
  const kern::KernelTable& kt = kern::Active();

  size_t i = 0;
  while (true) {
    if (covered != nullptr) {
      while (i < posts.size() && ((*covered)[posts[i]] & abit) != 0) ++i;
    }
    if (i >= posts.size()) break;

    const PostId px = posts[i];
    const DimValue vx = inst.value(px);

    // Pick, among the candidates that cover px, the one whose coverage
    // extends furthest right; on ties prefer the latest post, which
    // reproduces the paper's "post right before Py" rule for uniform
    // lambda.
    PostId best = px;
    DimValue best_end = vx + model.Reach(inst, px, a);
    if (uniform) {
      // Constant reach makes every candidate's end value(z) + lambda,
      // weakly ascending over the sorted list, so the >=-fold below
      // reduces to "last candidate passing Covers before the window
      // break" — exactly the SIMD last-cover kernel.
      const size_t j = kt.last_cover(values.data() + i + 1,
                                     values.size() - i - 1, vx, max_reach,
                                     vx + max_reach);
      if (j != kern::kNoIndex) {
        best = posts[i + 1 + j];
        best_end = inst.value(best) + max_reach;
      }
    } else {
      for (size_t j = i + 1; j < posts.size(); ++j) {
        const PostId z = posts[j];
        if (inst.value(z) > vx + max_reach) break;
        if (!model.Covers(inst, z, a, px)) continue;
        const DimValue end = inst.value(z) + model.Reach(inst, z, a);
        if (end >= best_end) {
          best = z;
          best_end = end;
        }
      }
    }

    out->push_back(best);
    if (covered != nullptr && mark != nullptr) {
      (*mark)(best);
      // The skip loop at the top advances i.
    } else if (covered != nullptr) {
      // Scan+: everything `best` covers, for every label it carries,
      // is pruned from the remaining sweeps.
      ForEachLabel(inst.labels(best), [&](LabelId b) {
        const DimValue reach = model.Reach(inst, best, b);
        const DimValue vb = inst.value(best);
        for (PostId q : inst.LabelPostsInRange(b, vb - reach, vb + reach)) {
          (*covered)[q] |= MaskOf(b);
        }
      });
      // The skip loop at the top advances i.
    } else {
      // Plain Scan: advance past the posts `best` covers for label a.
      while (i < posts.size() && inst.value(posts[i]) <= best_end) ++i;
    }
  }
}

std::vector<LabelId> OrderedLabels(const Instance& inst, LabelOrder order) {
  std::vector<LabelId> labels(static_cast<size_t>(inst.num_labels()));
  std::iota(labels.begin(), labels.end(), LabelId{0});
  switch (order) {
    case LabelOrder::kById:
      break;
    case LabelOrder::kSizeAsc:
      std::stable_sort(labels.begin(), labels.end(),
                       [&](LabelId x, LabelId y) {
                         return inst.label_posts(x).size() <
                                inst.label_posts(y).size();
                       });
      break;
    case LabelOrder::kSizeDesc:
      std::stable_sort(labels.begin(), labels.end(),
                       [&](LabelId x, LabelId y) {
                         return inst.label_posts(x).size() >
                                inst.label_posts(y).size();
                       });
      break;
  }
  return labels;
}

}  // namespace internal

using internal::OrderedLabels;
using internal::SweepLabel;

Result<std::vector<PostId>> ScanSolver::Solve(
    const Instance& inst, const CoverageModel& model) const {
  return SolveWithBudget(inst, model, Deadline::Unbounded());
}

Result<std::vector<PostId>> ScanSolver::SolveWithBudget(
    const Instance& inst, const CoverageModel& model,
    const Deadline& deadline) const {
  DeadlineChecker budget(deadline);
  std::vector<PostId> out;
  for (LabelId a = 0; a < static_cast<LabelId>(inst.num_labels()); ++a) {
    MQD_RETURN_NOT_OK(budget.Check("Scan"));
    SweepLabel(inst, model, a, /*covered=*/nullptr, &out);
  }
  internal::CanonicalizeSelection(&out);
  return out;
}

Result<std::vector<PostId>> ScanPlusSolver::Solve(
    const Instance& inst, const CoverageModel& model) const {
  return SolveWithBudget(inst, model, Deadline::Unbounded());
}

Result<std::vector<PostId>> ScanPlusSolver::SolveWithBudget(
    const Instance& inst, const CoverageModel& model,
    const Deadline& deadline) const {
  DeadlineChecker budget(deadline);
  std::vector<PostId> out;
  std::vector<LabelMask> covered(inst.num_posts(), 0);
  for (LabelId a : OrderedLabels(inst, order_)) {
    MQD_RETURN_NOT_OK(budget.Check("Scan+"));
    SweepLabel(inst, model, a, &covered, &out);
  }
  internal::CanonicalizeSelection(&out);
  return out;
}

}  // namespace mqd
