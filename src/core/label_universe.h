#ifndef MQD_CORE_LABEL_UNIVERSE_H_
#define MQD_CORE_LABEL_UNIVERSE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "util/result.h"
#include "util/status.h"

namespace mqd {

/// Bidirectional mapping between label names (query strings, topic
/// names, hashtags) and the dense LabelIds used by the optimizer. An
/// instance's universe is bounded by kMaxLabels so label sets fit in a
/// LabelMask.
class LabelUniverse {
 public:
  LabelUniverse() = default;

  /// Interns `name`, returning its id; returns the existing id if the
  /// name is already present. Fails with ResourceExhausted once
  /// kMaxLabels distinct names have been interned.
  Result<LabelId> Intern(std::string_view name);

  /// Looks up an existing name.
  Result<LabelId> Find(std::string_view name) const;

  /// Name for an id; requires id < size().
  const std::string& Name(LabelId id) const;

  /// Builds a mask from a list of names, interning as needed.
  Result<LabelMask> InternAll(const std::vector<std::string>& names);

  size_t size() const { return names_.size(); }

  /// All names, indexed by LabelId.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> ids_;
};

}  // namespace mqd

#endif  // MQD_CORE_LABEL_UNIVERSE_H_
