#ifndef MQD_CORE_COVERAGE_H_
#define MQD_CORE_COVERAGE_H_

#include <cmath>
#include <memory>
#include <vector>

#include "core/instance.h"
#include "core/types.h"

namespace mqd {

/// Coverage semantics between posts (paper Definitions 1-2 and the
/// Section 6 variable-lambda extension).
///
/// Post `coverer` lambda-covers label `a` of post `coveree` iff both
/// are relevant to `a` and |F(coverer) - F(coveree)| <= Reach(coverer,
/// a). With a uniform lambda the relation is symmetric; with the
/// post-specific lambda of Section 6 it becomes directional (the reach
/// of the *covering* post decides).
class CoverageModel {
 public:
  virtual ~CoverageModel() = default;

  /// The coverage radius of (coverer, a). Requires a in
  /// labels(coverer).
  virtual DimValue Reach(const Instance& inst, PostId coverer,
                         LabelId a) const = 0;

  /// Upper bound on Reach over all (post, label) pairs; algorithms use
  /// it to bound window scans.
  virtual DimValue MaxReach() const = 0;

  /// True when Reach is the same constant for all pairs (enables the
  /// paper's symmetric-coverage fast paths, e.g. OPT).
  virtual bool IsUniform() const { return false; }

  /// Convenience: does `coverer` cover a in `coveree`? Requires a in
  /// labels of both posts.
  bool Covers(const Instance& inst, PostId coverer, LabelId a,
              PostId coveree) const {
    return std::fabs(inst.value(coverer) - inst.value(coveree)) <=
           Reach(inst, coverer, a);
  }
};

/// The fixed, symmetric lambda of Sections 2-5.
class UniformLambda final : public CoverageModel {
 public:
  explicit UniformLambda(DimValue lambda);

  DimValue Reach(const Instance&, PostId, LabelId) const override {
    return lambda_;
  }
  DimValue MaxReach() const override { return lambda_; }
  bool IsUniform() const override { return true; }

  DimValue lambda() const { return lambda_; }

 private:
  DimValue lambda_;
};

/// Post- and label-specific lambda (Section 6, Equation 2). The table
/// is indexed by (post, position of label within the post's mask);
/// build it with ComputeProportionalLambdas (core/proportional.h) or
/// supply arbitrary values for testing.
class VariableLambda final : public CoverageModel {
 public:
  /// `reaches[i]` holds one radius per set bit of labels(post i), in
  /// ascending label order. `max_reach` must dominate every entry.
  VariableLambda(std::vector<std::vector<DimValue>> reaches,
                 DimValue max_reach);

  DimValue Reach(const Instance& inst, PostId coverer,
                 LabelId a) const override;
  DimValue MaxReach() const override { return max_reach_; }

 private:
  std::vector<std::vector<DimValue>> reaches_;
  DimValue max_reach_;
};

}  // namespace mqd

#endif  // MQD_CORE_COVERAGE_H_
