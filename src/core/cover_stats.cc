#include "core/cover_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/histogram.h"

namespace mqd {

CoverStats ComputeCoverStats(const Instance& inst,
                             const std::vector<PostId>& selected) {
  CoverStats stats;
  stats.instance_posts = inst.num_posts();
  const size_t num_labels = static_cast<size_t>(inst.num_labels());
  stats.per_label_selected.assign(num_labels, 0);
  stats.per_label_posts.assign(num_labels, 0);

  std::vector<PostId> sorted = selected;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  stats.selected_posts = sorted.size();
  stats.compression =
      inst.num_posts() == 0
          ? 0.0
          : static_cast<double>(sorted.size()) /
                static_cast<double>(inst.num_posts());

  // Per-label selected values, ascending (sorted ids are value-sorted).
  std::vector<std::vector<double>> rep_values(num_labels);
  for (PostId z : sorted) {
    ForEachLabel(inst.labels(z), [&](LabelId a) {
      rep_values[a].push_back(inst.value(z));
      ++stats.per_label_selected[a];
    });
  }

  double total_distance = 0.0;
  size_t measured_pairs = 0;
  for (LabelId a = 0; a < num_labels; ++a) {
    const auto& reps = rep_values[a];
    stats.per_label_posts[a] = inst.label_posts(a).size();
    if (reps.empty()) continue;
    for (PostId p : inst.label_posts(a)) {
      const double v = inst.value(p);
      auto it = std::lower_bound(reps.begin(), reps.end(), v);
      double best = std::numeric_limits<double>::infinity();
      if (it != reps.end()) best = std::min(best, *it - v);
      if (it != reps.begin()) best = std::min(best, v - *(it - 1));
      total_distance += best;
      stats.max_distance_to_representative =
          std::max(stats.max_distance_to_representative, best);
      ++measured_pairs;
    }
  }
  stats.mean_distance_to_representative =
      measured_pairs == 0 ? 0.0 : total_distance / measured_pairs;

  // Label-distribution proportionality.
  const double total_sel_pairs = [&] {
    double sum = 0.0;
    for (size_t c : stats.per_label_selected) sum += c;
    return sum;
  }();
  const double total_pairs = static_cast<double>(inst.num_pairs());
  if (total_sel_pairs > 0.0 && total_pairs > 0.0) {
    double l1 = 0.0;
    for (LabelId a = 0; a < num_labels; ++a) {
      l1 += std::fabs(stats.per_label_selected[a] / total_sel_pairs -
                      stats.per_label_posts[a] / total_pairs);
    }
    stats.label_distribution_l1 = l1;
  }
  return stats;
}

double BucketDistributionL1(const Instance& inst,
                            const std::vector<PostId>& selected,
                            int num_buckets) {
  if (inst.num_posts() == 0 || selected.empty() || num_buckets <= 0) {
    return 0.0;
  }
  // The shared linear bucketing scheme (util/histogram), so these
  // distributions line up bucket-for-bucket with the digest timeline
  // and any histogram over the same value range.
  const double lo = inst.min_value();
  const double span = std::max(1e-12, inst.max_value() - lo);
  const LinearBuckets buckets(lo, lo + span,
                              static_cast<size_t>(num_buckets));
  std::vector<double> all(static_cast<size_t>(num_buckets), 0.0);
  std::vector<double> sel(static_cast<size_t>(num_buckets), 0.0);
  for (PostId p = 0; p < inst.num_posts(); ++p) {
    ++all[buckets.BucketOf(inst.value(p))];
  }
  for (PostId p : selected) ++sel[buckets.BucketOf(inst.value(p))];
  double l1 = 0.0;
  for (int b = 0; b < num_buckets; ++b) {
    l1 += std::fabs(
        all[static_cast<size_t>(b)] / static_cast<double>(inst.num_posts()) -
        sel[static_cast<size_t>(b)] / static_cast<double>(selected.size()));
  }
  return l1;
}

}  // namespace mqd
