#include "core/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "util/logging.h"

namespace mqd {

namespace kern {

namespace internal {
// Defined in kernels_avx2.cc (compiled with -mavx2) when the build
// carries AVX2 bodies.
const KernelTable& Avx2Table();
}  // namespace internal

namespace scalar {

// The scalar tier is the semantic reference: these bodies are the
// original solver loops, verbatim. The AVX2 tier (kernels_avx2.cc)
// must reproduce them bit-for-bit.

ArgmaxCompactResult ArgmaxCompact(PostId* ids, size_t n,
                                  const int64_t* gains) {
  ArgmaxCompactResult r{0, kInvalidPost, 0};
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    const PostId p = ids[i];
    const int64_t g = gains[p];
    if (g <= 0) continue;
    ids[w++] = p;
    if (g > r.best_gain) {
      r.best_gain = g;
      r.best = p;
    }
  }
  r.size = w;
  return r;
}

size_t ArgmaxDense(const int64_t* gains, size_t n) {
  int64_t best_gain = 0;
  size_t best = n;
  for (size_t i = 0; i < n; ++i) {
    if (gains[i] > best_gain) {
      best_gain = gains[i];
      best = i;
    }
  }
  return best;
}

void Materialize(int32_t* delta, size_t n, const PostId* ids,
                 int64_t* gains) {
  int64_t run = 0;
  for (size_t i = 0; i < n; ++i) {
    run += delta[i];
    delta[i] = 0;
    if (run != 0) gains[ids[i]] += run;
  }
}

void PrefixRuns(int32_t* delta, size_t n, int64_t* runs) {
  int64_t run = 0;
  for (size_t i = 0; i < n; ++i) {
    run += delta[i];
    delta[i] = 0;
    runs[i] = run;
  }
}

RunBounds CoverRun(const double* values, size_t n, double center,
                   double reach) {
  const double* lo = std::partition_point(
      values, values + n,
      [&](double v) { return v - center < -reach; });
  const double* hi = std::partition_point(
      lo, values + n, [&](double v) { return v - center <= reach; });
  return {static_cast<size_t>(lo - values), static_cast<size_t>(hi - values)};
}

RunBounds CovererRun(const double* values, size_t n, double center,
                     double reach) {
  const double* lo = std::partition_point(
      values, values + n,
      [&](double v) { return v + reach < center; });
  const double* hi = std::partition_point(
      lo, values + n, [&](double v) { return v - reach <= center; });
  return {static_cast<size_t>(lo - values), static_cast<size_t>(hi - values)};
}

uint64_t SumU8(const uint8_t* flags, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += flags[i];
  return total;
}

double MaxCoverEnd(const double* values, size_t n, double center,
                   double reach, double init) {
  double acc = init;
  for (size_t i = 0; i < n; ++i) {
    if (std::fabs(values[i] - center) <= reach) {
      acc = std::max(acc, values[i] + reach);
    }
  }
  return acc;
}

size_t LastCover(const double* values, size_t n, double center, double reach,
                 double limit) {
  size_t last = kNoIndex;
  for (size_t i = 0; i < n; ++i) {
    if (values[i] > limit) break;
    if (std::fabs(values[i] - center) <= reach) last = i;
  }
  return last;
}

void CoverDecrement(const double* values, const double* reaches, size_t n,
                    double center, const PostId* ids, int64_t* gains) {
  for (size_t i = 0; i < n; ++i) {
    if (std::fabs(values[i] - center) <= reaches[i]) --gains[ids[i]];
  }
}

}  // namespace scalar

namespace {

constexpr KernelTable kScalarTable{
    scalar::ArgmaxCompact, scalar::ArgmaxDense, scalar::Materialize,
    scalar::PrefixRuns,    scalar::CoverRun,    scalar::CovererRun,
    scalar::SumU8,         scalar::MaxCoverEnd, scalar::LastCover,
    scalar::CoverDecrement,
};

// Dispatch state. Written once at startup (or from single-threaded
// test setup via ForceLevelForTest); read on every solve.
const KernelTable* g_active_table = nullptr;
simd::Level g_active_level = simd::Level::kScalar;

void DecideDispatch() {
  simd::Level level =
      simd::Avx2Available() ? simd::Level::kAvx2 : simd::Level::kScalar;
  if (const char* env = std::getenv("MQD_SIMD")) {
    const std::string_view want(env);
    if (want == "scalar") {
      level = simd::Level::kScalar;
    } else if (want == "avx2") {
      if (simd::Avx2Available()) {
        level = simd::Level::kAvx2;
      } else {
        MQD_LOG(Warning) << "MQD_SIMD=avx2 requested but AVX2 is "
                            "unavailable; staying on scalar kernels";
        level = simd::Level::kScalar;
      }
    } else if (!want.empty()) {
      MQD_LOG(Warning) << "Unknown MQD_SIMD value '" << env
                       << "' (expected scalar|avx2); using auto-detection";
    }
  }
  g_active_level = level;
  g_active_table = &Table(level);
}

// Thread-safe once-only dispatch (magic static); parallel solvers may
// race the first kernel call from several workers.
void EnsureDispatch() {
  static const bool done = (DecideDispatch(), true);
  (void)done;
}

}  // namespace

const KernelTable& Table(simd::Level level) {
#ifdef MQD_HAVE_AVX2
  if (level == simd::Level::kAvx2) {
    MQD_CHECK(simd::Avx2Available()) << "AVX2 kernels requested on a CPU "
                                        "without AVX2";
    return internal::Avx2Table();
  }
#else
  MQD_CHECK(level == simd::Level::kScalar)
      << "this build carries no AVX2 kernel bodies";
#endif
  (void)level;
  return kScalarTable;
}

const KernelTable& Active() {
  EnsureDispatch();
  return *g_active_table;
}

}  // namespace kern

namespace simd {

Level Active() {
  kern::EnsureDispatch();
  return kern::g_active_level;
}

bool Avx2Available() {
#if defined(MQD_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
  static const bool available = __builtin_cpu_supports("avx2") != 0;
  return available;
#else
  return false;
#endif
}

std::string_view LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ForceLevelForTest(Level level) {
  if (level == Level::kAvx2 && !Avx2Available()) return false;
  kern::EnsureDispatch();
  kern::g_active_level = level;
  kern::g_active_table = &kern::Table(level);
  return true;
}

}  // namespace simd
}  // namespace mqd
