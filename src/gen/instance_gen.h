#ifndef MQD_GEN_INSTANCE_GEN_H_
#define MQD_GEN_INSTANCE_GEN_H_

#include <cstdint>

#include "core/instance.h"
#include "util/result.h"
#include "util/rng.h"

namespace mqd {

/// Direct generator of MQDP instances with the knobs the paper's
/// evaluation sweeps: label-set size |L|, interval length, matching
/// rate, post overlap rate, label popularity skew and burstiness. The
/// solvers only see (value, label mask) pairs, so this generator is
/// what drives the Figure 6-15 reproductions; the full-text tweet
/// generator (gen/tweet_gen.h) feeds the end-to-end pipeline
/// experiments instead.
struct InstanceGenConfig {
  int num_labels = 2;
  /// Length of the generated interval, in dimension units (seconds).
  double duration = 600.0;
  /// Mean rate of matching posts, per minute of interval (compare
  /// paper Table 2: 136/min for |L|=2 ... 1180/min for |L|=20).
  double posts_per_minute = 30.0;
  /// Target post overlap rate in [1, num_labels]: the mean number of
  /// labels per post. 1.0 = disjoint queries; higher values make the
  /// multi-query structure harder (Figure 6).
  double overlap_rate = 1.2;
  /// Zipf exponent of label popularity (0 = uniform).
  double popularity_skew = 0.7;
  /// Fraction of posts arriving in bursts (pairs topics with short
  /// high-rate windows) instead of uniformly.
  double burst_fraction = 0.0;
  /// Mean burst length in dimension units.
  double burst_duration = 30.0;
  uint64_t seed = 42;
};

/// Generates an instance; post values lie in [0, duration] with
/// Poisson-like arrivals. The realized overlap rate is within noise of
/// `overlap_rate`; read the exact value from
/// Instance::overlap_rate().
Result<Instance> GenerateInstance(const InstanceGenConfig& config);

/// Uniformly random tiny instance for property tests: `n` posts, each
/// with 1..max_labels_per_post labels out of num_labels, values
/// uniform integers in [0, value_range].
Result<Instance> GenerateTinyInstance(int n, int num_labels,
                                      int max_labels_per_post,
                                      int value_range, Rng* rng);

}  // namespace mqd

#endif  // MQD_GEN_INSTANCE_GEN_H_
