#include "gen/profile_gen.h"

#include <algorithm>
#include <map>

namespace mqd {

Result<std::vector<Profile>> GenerateProfiles(
    const std::vector<Topic>& topics, size_t label_set_size, size_t count,
    Rng* rng) {
  if (label_set_size == 0) {
    return Status::InvalidArgument("label_set_size must be positive");
  }
  // Topics per broad group.
  std::map<int, std::vector<size_t>> groups;
  std::vector<size_t> pool;
  for (size_t i = 0; i < topics.size(); ++i) {
    if (topics[i].group >= 0) {
      groups[topics[i].group].push_back(i);
      pool.push_back(i);
    }
  }
  if (pool.empty()) {
    return Status::FailedPrecondition("no grouped topics to pick from");
  }
  if (pool.size() < label_set_size) {
    return Status::InvalidArgument(
        "label_set_size exceeds the number of grouped topics");
  }
  std::vector<int> group_keys;
  group_keys.reserve(groups.size());
  for (const auto& [key, members] : groups) group_keys.push_back(key);

  std::vector<Profile> profiles;
  profiles.reserve(count);
  for (size_t c = 0; c < count; ++c) {
    const int group = group_keys[rng->Uniform(group_keys.size())];
    std::vector<size_t> candidates = groups[group];
    rng->Shuffle(&candidates);
    Profile profile(candidates.begin(),
                    candidates.begin() +
                        static_cast<long>(std::min(candidates.size(),
                                                   label_set_size)));
    // Top up from the global pool when the broad topic is small.
    while (profile.size() < label_set_size) {
      const size_t pick = pool[rng->Uniform(pool.size())];
      if (std::find(profile.begin(), profile.end(), pick) ==
          profile.end()) {
        profile.push_back(pick);
      }
    }
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

Result<std::vector<LabelMask>> GenerateLabelMaskProfiles(
    int num_labels, size_t label_set_size, size_t count, Rng* rng) {
  if (num_labels < 1 || num_labels > kMaxLabels) {
    return Status::InvalidArgument(
        "num_labels must be in [1, kMaxLabels]");
  }
  if (label_set_size == 0 ||
      label_set_size > static_cast<size_t>(num_labels)) {
    return Status::InvalidArgument(
        "label_set_size must be in [1, num_labels]");
  }
  constexpr int kGroupSize = 4;  // broad topic = 4 consecutive labels
  const int num_groups = (num_labels + kGroupSize - 1) / kGroupSize;

  std::vector<LabelMask> profiles;
  profiles.reserve(count);
  std::vector<LabelId> members;
  for (size_t c = 0; c < count; ++c) {
    const int group = static_cast<int>(rng->Uniform(
        static_cast<size_t>(num_groups)));
    members.clear();
    for (int a = group * kGroupSize;
         a < std::min((group + 1) * kGroupSize, num_labels); ++a) {
      members.push_back(static_cast<LabelId>(a));
    }
    rng->Shuffle(&members);
    LabelMask mask = 0;
    size_t picked = 0;
    for (LabelId a : members) {
      if (picked == label_set_size) break;
      mask |= MaskOf(a);
      ++picked;
    }
    while (picked < label_set_size) {
      const LabelId a = static_cast<LabelId>(
          rng->Uniform(static_cast<size_t>(num_labels)));
      if (MaskHas(mask, a)) continue;
      mask |= MaskOf(a);
      ++picked;
    }
    profiles.push_back(mask);
  }
  return profiles;
}

}  // namespace mqd
