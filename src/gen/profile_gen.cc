#include "gen/profile_gen.h"

#include <algorithm>
#include <map>

namespace mqd {

Result<std::vector<Profile>> GenerateProfiles(
    const std::vector<Topic>& topics, size_t label_set_size, size_t count,
    Rng* rng) {
  if (label_set_size == 0) {
    return Status::InvalidArgument("label_set_size must be positive");
  }
  // Topics per broad group.
  std::map<int, std::vector<size_t>> groups;
  std::vector<size_t> pool;
  for (size_t i = 0; i < topics.size(); ++i) {
    if (topics[i].group >= 0) {
      groups[topics[i].group].push_back(i);
      pool.push_back(i);
    }
  }
  if (pool.empty()) {
    return Status::FailedPrecondition("no grouped topics to pick from");
  }
  if (pool.size() < label_set_size) {
    return Status::InvalidArgument(
        "label_set_size exceeds the number of grouped topics");
  }
  std::vector<int> group_keys;
  group_keys.reserve(groups.size());
  for (const auto& [key, members] : groups) group_keys.push_back(key);

  std::vector<Profile> profiles;
  profiles.reserve(count);
  for (size_t c = 0; c < count; ++c) {
    const int group = group_keys[rng->Uniform(group_keys.size())];
    std::vector<size_t> candidates = groups[group];
    rng->Shuffle(&candidates);
    Profile profile(candidates.begin(),
                    candidates.begin() +
                        static_cast<long>(std::min(candidates.size(),
                                                   label_set_size)));
    // Top up from the global pool when the broad topic is small.
    while (profile.size() < label_set_size) {
      const size_t pick = pool[rng->Uniform(pool.size())];
      if (std::find(profile.begin(), profile.end(), pick) ==
          profile.end()) {
        profile.push_back(pick);
      }
    }
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

}  // namespace mqd
