#include "gen/tweet_gen.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "gen/news_gen.h"
#include "sentiment/lexicon.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace mqd {

namespace {

constexpr double kDaySeconds = 24 * 3600.0;

double DiurnalRate(const TweetGenConfig& config, double t) {
  const double phase =
      2.0 * std::numbers::pi * (t - config.diurnal_phase_seconds) /
      kDaySeconds;
  return config.base_rate_per_minute / 60.0 *
         (1.0 + config.diurnal_amplitude * std::sin(phase));
}

/// Words of one synthetic tweet.
std::string MakeTweetText(const TweetGenConfig& config, int topic,
                          int secondary, double sentiment, Rng* rng,
                          const std::vector<ZipfSampler>& topic_samplers,
                          const ZipfSampler& background_sampler) {
  const auto& topics = BuiltinBroadTopics();
  const int64_t words =
      std::max<int64_t>(3, rng->Poisson(config.mean_words));
  std::vector<std::string> text;
  text.reserve(static_cast<size_t>(words) + 2);
  for (int64_t k = 0; k < words; ++k) {
    const double draw = rng->NextDouble();
    if (topic >= 0 && draw < 0.45) {
      const int chosen =
          (secondary >= 0 && rng->Bernoulli(0.3)) ? secondary : topic;
      const auto& spec = topics[static_cast<size_t>(chosen)];
      text.push_back(
          spec.keywords[topic_samplers[static_cast<size_t>(chosen)].Sample(
              rng)]);
    } else {
      text.push_back(BackgroundWords()[background_sampler.Sample(rng)]);
    }
  }
  // Plant sentiment-bearing words matching the intended polarity.
  const int64_t opinion_words = rng->Poisson(1.2);
  for (int64_t k = 0; k < opinion_words; ++k) {
    const double p_positive = (1.0 + sentiment) / 2.0;
    if (rng->Bernoulli(p_positive)) {
      text.push_back(std::string(
          PositiveWords()[rng->Uniform(PositiveWords().size())]));
    } else {
      text.push_back(std::string(
          NegativeWords()[rng->Uniform(NegativeWords().size())]));
    }
  }
  // Occasionally hashtag the topic.
  if (topic >= 0 && rng->Bernoulli(0.3)) {
    text.push_back("#" + topics[static_cast<size_t>(topic)].name);
  }
  rng->Shuffle(&text);
  return Join(text, " ");
}

}  // namespace

Result<std::vector<Tweet>> GenerateTweetStream(
    const TweetGenConfig& config) {
  if (config.duration_seconds <= 0.0 ||
      config.base_rate_per_minute <= 0.0) {
    return Status::InvalidArgument("bad duration or rate");
  }
  if (config.diurnal_amplitude < 0.0 || config.diurnal_amplitude >= 1.0) {
    return Status::InvalidArgument("diurnal amplitude must be in [0, 1)");
  }
  if (config.duplicate_prob < 0.0 || config.duplicate_prob >= 1.0) {
    return Status::InvalidArgument("duplicate_prob must be in [0, 1)");
  }

  const auto& topics = BuiltinBroadTopics();
  Rng rng(config.seed);
  std::vector<ZipfSampler> topic_word_samplers;
  topic_word_samplers.reserve(topics.size());
  for (const BroadTopicSpec& spec : topics) {
    topic_word_samplers.emplace_back(spec.keywords.size(), 0.8);
  }
  const ZipfSampler background_sampler(BackgroundWords().size(), 0.8);
  const ZipfSampler topic_popularity(topics.size(), config.topic_skew);

  // Per-topic sentiment mood: stable bias so sentiment distributions
  // differ across topics (Section 6's motivating scenario).
  std::vector<double> mood(topics.size());
  for (double& m : mood) {
    m = rng.UniformDouble(-config.sentiment_bias, config.sentiment_bias);
  }

  // Arrival times: thinning of a homogeneous Poisson process at the
  // diurnal max rate.
  std::vector<std::pair<double, int>> arrivals;  // (time, forced topic)
  const double max_rate = config.base_rate_per_minute / 60.0 *
                          (1.0 + config.diurnal_amplitude);
  double t = 0.0;
  while (true) {
    t += rng.Exponential(max_rate);
    if (t >= config.duration_seconds) break;
    if (rng.NextDouble() <= DiurnalRate(config, t) / max_rate) {
      arrivals.emplace_back(t, -2);  // -2 = sample topic normally
    }
  }

  // Burst events: topic-specific spikes with exponential decay.
  for (int b = 0; b < config.num_bursts; ++b) {
    const double start =
        rng.UniformDouble(0.0, config.duration_seconds * 0.95);
    const int topic = static_cast<int>(topic_popularity.Sample(&rng));
    const int64_t size = rng.Poisson(config.burst_size);
    for (int64_t k = 0; k < size; ++k) {
      const double offset = rng.Exponential(1.0 / config.burst_tau);
      const double when = start + offset;
      if (when < config.duration_seconds) arrivals.emplace_back(when, topic);
    }
  }
  std::sort(arrivals.begin(), arrivals.end());

  std::vector<Tweet> stream;
  stream.reserve(arrivals.size());
  std::vector<size_t> recent;  // indices of recent tweets, ring buffer
  constexpr size_t kRecentWindow = 200;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    Tweet tweet;
    tweet.id = i + 1;
    tweet.time = arrivals[i].first;

    if (!recent.empty() && rng.Bernoulli(config.duplicate_prob)) {
      // Near-duplicate (retweet): copy a recent tweet, tweak lightly.
      const Tweet& source =
          stream[recent[rng.Uniform(recent.size())]];
      tweet.text = "rt " + source.text;
      tweet.broad_topic = source.broad_topic;
      tweet.true_sentiment = source.true_sentiment;
      tweet.is_retweet = true;
    } else {
      int topic = arrivals[i].second;
      if (topic == -2) {
        topic = rng.Bernoulli(config.topical_fraction)
                    ? static_cast<int>(topic_popularity.Sample(&rng))
                    : -1;
      }
      int secondary = -1;
      if (topic >= 0 && rng.Bernoulli(config.mixture_prob)) {
        do {
          secondary = static_cast<int>(rng.Uniform(topics.size()));
        } while (secondary == topic);
      }
      const double base_mood =
          topic >= 0 ? mood[static_cast<size_t>(topic)] : 0.0;
      tweet.true_sentiment =
          std::clamp(base_mood + rng.Normal(0.0, 0.35), -1.0, 1.0);
      tweet.broad_topic = topic;
      tweet.text =
          MakeTweetText(config, topic, secondary, tweet.true_sentiment,
                        &rng, topic_word_samplers, background_sampler);
    }

    recent.push_back(stream.size());
    if (recent.size() > kRecentWindow) {
      recent.erase(recent.begin());
    }
    stream.push_back(std::move(tweet));
  }
  return stream;
}

}  // namespace mqd
