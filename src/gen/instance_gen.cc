#include "gen/instance_gen.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace mqd {

namespace {

/// Adds labels beyond the base one so the expected label count per
/// post is `overlap_rate`.
LabelMask AddExtraLabels(LabelMask base, int num_labels, double overlap_rate,
                         Rng* rng) {
  if (num_labels <= 1) return base;
  const double p_extra =
      std::clamp((overlap_rate - 1.0) / (num_labels - 1), 0.0, 1.0);
  LabelMask mask = base;
  for (LabelId a = 0; a < static_cast<LabelId>(num_labels); ++a) {
    if (!MaskHas(mask, a) && rng->Bernoulli(p_extra)) mask |= MaskOf(a);
  }
  return mask;
}

}  // namespace

Result<Instance> GenerateInstance(const InstanceGenConfig& config) {
  if (config.num_labels < 1 || config.num_labels > kMaxLabels) {
    return Status::InvalidArgument("num_labels out of range");
  }
  if (config.duration <= 0.0 || config.posts_per_minute < 0.0) {
    return Status::InvalidArgument("bad duration or rate");
  }
  if (config.overlap_rate < 1.0 ||
      config.overlap_rate > config.num_labels) {
    return Status::InvalidArgument(
        "overlap_rate must lie in [1, num_labels]");
  }

  Rng rng(config.seed);
  const double mean_posts =
      config.duration / 60.0 * config.posts_per_minute;
  const size_t total =
      static_cast<size_t>(std::max<int64_t>(1, rng.Poisson(mean_posts)));
  const ZipfSampler popularity(static_cast<size_t>(config.num_labels),
                               config.popularity_skew);

  InstanceBuilder builder(config.num_labels);
  const size_t burst_posts = static_cast<size_t>(
      std::llround(static_cast<double>(total) * config.burst_fraction));

  // Background (uniform-arrival) posts.
  for (size_t i = 0; i < total - burst_posts; ++i) {
    const double t = rng.UniformDouble(0.0, config.duration);
    const LabelId base =
        static_cast<LabelId>(popularity.Sample(&rng));
    builder.Add(t,
                AddExtraLabels(MaskOf(base), config.num_labels,
                               config.overlap_rate, &rng),
                builder.size());
  }

  // Bursty posts: clustered around topic-specific event times.
  size_t emitted = 0;
  while (emitted < burst_posts) {
    const double center = rng.UniformDouble(0.0, config.duration);
    const LabelId topic = static_cast<LabelId>(popularity.Sample(&rng));
    const size_t burst_size = std::min<size_t>(
        burst_posts - emitted,
        1 + static_cast<size_t>(rng.Poisson(20.0)));
    for (size_t k = 0; k < burst_size; ++k) {
      const double t = std::clamp(
          center + rng.Normal(0.0, config.burst_duration / 2.0), 0.0,
          config.duration);
      builder.Add(t,
                  AddExtraLabels(MaskOf(topic), config.num_labels,
                                 config.overlap_rate, &rng),
                  builder.size());
    }
    emitted += burst_size;
  }

  return builder.Build();
}

Result<Instance> GenerateTinyInstance(int n, int num_labels,
                                      int max_labels_per_post,
                                      int value_range, Rng* rng) {
  MQD_CHECK(n >= 0 && num_labels >= 1 && max_labels_per_post >= 1);
  InstanceBuilder builder(num_labels);
  const int cap = std::min(max_labels_per_post, num_labels);
  for (int i = 0; i < n; ++i) {
    const double t =
        static_cast<double>(rng->UniformInt(0, value_range));
    const int count = 1 + static_cast<int>(rng->Uniform(
                              static_cast<uint64_t>(cap)));
    LabelMask mask = 0;
    while (MaskCount(mask) < count) {
      mask |= MaskOf(static_cast<LabelId>(
          rng->Uniform(static_cast<uint64_t>(num_labels))));
    }
    builder.Add(t, mask, static_cast<uint64_t>(i));
  }
  return builder.Build();
}

}  // namespace mqd
