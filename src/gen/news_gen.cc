#include "gen/news_gen.h"

#include "util/rng.h"
#include "util/string_util.h"

namespace mqd {

namespace {

std::vector<BroadTopicSpec>* BuildBroadTopics() {
  return new std::vector<BroadTopicSpec>{
      {"politics",
       {"obama", "president", "congress", "senate", "house", "election",
        "vote", "poll", "republican", "democrat", "campaign", "candidate",
        "barack", "michelle", "inauguration", "administration", "party",
        "political", "race", "electoral", "coalition", "governor", "senator",
        "legislation", "bill", "veto", "debate", "primary", "caucus",
        "whitehouse", "capitol", "policy", "lobbyist", "filibuster",
        "bipartisan", "ballot", "electorate", "incumbent", "mandate",
        "presidential"}},
      {"sports",
       {"woods", "tiger", "golf", "masters", "championship", "mcilroy",
        "garcia", "pga", "augusta", "rory", "mickelson", "nfl", "super",
        "bowl", "draft", "ravens", "football", "baltimore", "patriots",
        "jets", "quarterback", "giants", "eagles", "basketball", "nba",
        "playoffs", "finals", "lakers", "heat", "lebron", "baseball",
        "yankees", "soccer", "goal", "tournament", "coach", "touchdown",
        "stadium", "league", "season"}},
      {"finance",
       {"stocks", "market", "nasdaq", "dow", "trading", "investor",
        "earnings", "shares", "goog", "msft", "aapl", "fed", "rates",
        "interest", "inflation", "bond", "treasury", "bank", "banking",
        "economy", "economic", "gdp", "unemployment", "jobs", "hiring",
        "revenue", "profit", "quarterly", "dividend", "ipo", "merger",
        "acquisition", "hedge", "fund", "portfolio", "bullish", "bearish",
        "currency", "dollar", "euro"}},
      {"tech",
       {"apple", "google", "microsoft", "iphone", "android", "software",
        "startup", "silicon", "valley", "app", "cloud", "data", "privacy",
        "security", "hack", "hacker", "internet", "web", "mobile", "tablet",
        "laptop", "chip", "processor", "facebook", "twitter", "social",
        "network", "algorithm", "ai", "robot", "gadget", "device", "launch",
        "update", "developer", "code", "platform", "browser", "search",
        "wearable"}},
      {"health",
       {"health", "hospital", "doctor", "patient", "cancer", "disease",
        "virus", "vaccine", "flu", "outbreak", "epidemic", "drug", "fda",
        "treatment", "therapy", "surgery", "clinical", "trial", "medicare",
        "medicaid", "insurance", "obamacare", "nutrition", "diet", "obesity",
        "diabetes", "heart", "stroke", "mental", "depression", "anxiety",
        "research", "study", "gene", "dna", "antibiotic", "infection",
        "symptom", "diagnosis", "wellness"}},
      {"entertainment",
       {"movie", "film", "hollywood", "actor", "actress", "oscar", "awards",
        "premiere", "boxoffice", "trailer", "sequel", "director", "studio",
        "music", "album", "concert", "tour", "grammy", "singer", "band",
        "celebrity", "gossip", "fashion", "style", "designer", "television",
        "episode", "series", "netflix", "streaming", "drama", "comedy",
        "thriller", "documentary", "festival", "cannes", "broadway",
        "theater", "pop", "rapper"}},
      {"science",
       {"nasa", "space", "mars", "rover", "telescope", "hubble", "orbit",
        "satellite", "rocket", "launch", "astronaut", "planet", "asteroid",
        "comet", "galaxy", "physics", "particle", "higgs", "cern",
        "quantum", "climate", "carbon", "emissions", "warming", "energy",
        "solar", "fossil", "species", "evolution", "biology", "chemistry",
        "experiment", "laboratory", "discovery", "researcher", "journal",
        "peer", "hypothesis", "observatory", "expedition"}},
      {"world",
       {"syria", "china", "russia", "iran", "korea", "europe", "eu",
        "brussels", "nato", "un", "united", "nations", "diplomat",
        "embassy", "sanctions", "treaty", "border", "refugee", "migration",
        "conflict", "war", "ceasefire", "peace", "talks", "summit",
        "minister", "parliament", "prime", "chancellor", "beijing",
        "moscow", "tehran", "damascus", "cairo", "istanbul", "africa",
        "asia", "latin", "america", "global"}},
      {"weather",
       {"storm", "hurricane", "tornado", "flood", "flooding", "rain",
        "snow", "blizzard", "drought", "heat", "heatwave", "temperature",
        "forecast", "meteorologist", "wind", "gust", "hail", "lightning",
        "thunder", "cyclone", "typhoon", "tropical", "depression",
        "evacuation", "shelter", "damage", "warning", "watch", "advisory",
        "coast", "coastal", "inland", "rainfall", "snowfall", "degrees",
        "celsius", "fahrenheit", "humidity", "barometric", "front"}},
      {"crime",
       {"police", "arrest", "suspect", "shooting", "gun", "murder",
        "homicide", "robbery", "burglary", "theft", "fraud", "scam",
        "investigation", "detective", "fbi", "warrant", "charges",
        "indictment", "trial", "jury", "verdict", "sentence", "prison",
        "jail", "parole", "victim", "witness", "evidence", "forensic",
        "court", "judge", "attorney", "prosecutor", "defense", "bail",
        "felony", "misdemeanor", "gang", "narcotics", "smuggling"}}};
}

}  // namespace

const std::vector<BroadTopicSpec>& BuiltinBroadTopics() {
  static const std::vector<BroadTopicSpec>* const kTopics =
      BuildBroadTopics();
  return *kTopics;
}

const std::vector<std::string>& BackgroundWords() {
  static const std::vector<std::string>* const kWords =
      new std::vector<std::string>{
          "today",    "report",   "reports",  "said",     "says",
          "people",   "city",     "state",    "country",  "national",
          "local",    "official", "officials", "source",  "sources",
          "breaking", "update",   "live",     "video",    "photo",
          "story",    "article",  "read",     "watch",    "full",
          "million",  "billion",  "percent",  "year",     "years",
          "week",     "month",    "monday",   "tuesday",  "friday",
          "morning",  "evening",  "night",    "early",    "late",
          "group",    "public",   "plan",     "plans",    "announce",
          "announced", "statement", "press",  "media",    "coverage"};
  return *kWords;
}

Result<std::vector<NewsArticle>> GenerateNewsCorpus(
    const NewsGenConfig& config) {
  if (config.num_articles == 0 || config.mean_words <= 0.0) {
    return Status::InvalidArgument("bad news generator config");
  }
  if (config.background_fraction < 0.0 ||
      config.background_fraction >= 1.0 || config.mixture_prob < 0.0 ||
      config.mixture_prob > 1.0) {
    return Status::InvalidArgument("fractions must be probabilities");
  }

  const std::vector<BroadTopicSpec>& topics = BuiltinBroadTopics();
  Rng rng(config.seed);
  std::vector<ZipfSampler> word_samplers;
  word_samplers.reserve(topics.size());
  for (const BroadTopicSpec& spec : topics) {
    word_samplers.emplace_back(spec.keywords.size(), config.word_skew);
  }
  const ZipfSampler background_sampler(BackgroundWords().size(),
                                       config.word_skew);

  std::vector<NewsArticle> corpus;
  corpus.reserve(config.num_articles);
  for (size_t i = 0; i < config.num_articles; ++i) {
    const int primary =
        static_cast<int>(rng.Uniform(topics.size()));
    int secondary = -1;
    if (rng.Bernoulli(config.mixture_prob)) {
      do {
        secondary = static_cast<int>(rng.Uniform(topics.size()));
      } while (secondary == primary);
    }
    const int64_t words = std::max<int64_t>(8, rng.Poisson(config.mean_words));
    std::vector<std::string> text;
    text.reserve(static_cast<size_t>(words));
    for (int64_t k = 0; k < words; ++k) {
      if (rng.Bernoulli(config.background_fraction)) {
        text.push_back(BackgroundWords()[background_sampler.Sample(&rng)]);
        continue;
      }
      // 70/30 split between primary and secondary topic words.
      const int topic =
          (secondary >= 0 && rng.Bernoulli(0.3)) ? secondary : primary;
      const BroadTopicSpec& spec = topics[static_cast<size_t>(topic)];
      text.push_back(
          spec.keywords[word_samplers[static_cast<size_t>(topic)].Sample(
              &rng)]);
    }
    corpus.push_back(NewsArticle{Join(text, " "), primary});
  }
  return corpus;
}

}  // namespace mqd
