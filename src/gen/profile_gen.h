#ifndef MQD_GEN_PROFILE_GEN_H_
#define MQD_GEN_PROFILE_GEN_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "topics/topic_model.h"
#include "util/result.h"
#include "util/rng.h"

namespace mqd {

/// A user profile: the set of query topics the user subscribed to
/// (Section 7.1: "to generate a label set L, we first randomly pick a
/// broad topic and then randomly pick |L| topics within the broad
/// topic"). Values are indices into the grouped topic vector.
using Profile = std::vector<size_t>;

/// Generates `count` profiles of `label_set_size` topics each from the
/// grouped topics (group >= 0). When a broad topic has fewer than
/// |L| topics the remainder is drawn from the whole pool, keeping the
/// profile size exact. Fails when there are no grouped topics.
Result<std::vector<Profile>> GenerateProfiles(
    const std::vector<Topic>& topics, size_t label_set_size, size_t count,
    Rng* rng);

/// Subscription workloads for the multi-tenant stream engine: `count`
/// label masks of `label_set_size` labels each over the dense label
/// universe [0, num_labels), following the same Section 7.1 scheme as
/// GenerateProfiles — labels are partitioned into broad groups of
/// four consecutive ids, a profile picks one group and draws its
/// labels there first, topping up from the whole universe when the
/// group is too small. Duplicate masks are expected and wanted: they
/// are what profile clustering de-duplicates.
Result<std::vector<LabelMask>> GenerateLabelMaskProfiles(
    int num_labels, size_t label_set_size, size_t count, Rng* rng);

}  // namespace mqd

#endif  // MQD_GEN_PROFILE_GEN_H_
