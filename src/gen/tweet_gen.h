#ifndef MQD_GEN_TWEET_GEN_H_
#define MQD_GEN_TWEET_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace mqd {

/// A synthetic microblog post. Substitutes the paper's 24-hour, ~4.3M
/// tweet 1% Twitter-stream sample (2013-06-12), which is not
/// redistributable: what the algorithms consume is the arrival
/// process, topical mix, near-duplicates and sentiment-bearing text,
/// all modeled here with explicit knobs.
struct Tweet {
  uint64_t id = 0;
  /// Seconds since the stream start.
  double time = 0.0;
  std::string text;
  /// Ground-truth dominant broad topic (-1 = pure chatter).
  int broad_topic = -1;
  /// Ground-truth sentiment the text was planted with, in [-1, 1].
  double true_sentiment = 0.0;
  /// True when emitted as a near-duplicate (retweet) of another tweet.
  bool is_retweet = false;
};

struct TweetGenConfig {
  double duration_seconds = 24 * 3600.0;
  /// Mean stream rate in tweets/minute at the diurnal baseline.
  double base_rate_per_minute = 120.0;
  /// Diurnal modulation amplitude in [0, 1): rate(t) = base * (1 + A *
  /// sin(2 pi (t - phase)/day)).
  double diurnal_amplitude = 0.4;
  double diurnal_phase_seconds = 6 * 3600.0;
  /// Probability a tweet is topical (else background chatter).
  double topical_fraction = 0.55;
  /// Zipf exponent over broad-topic popularity.
  double topic_skew = 0.8;
  /// Probability a topical tweet references a second topic.
  double mixture_prob = 0.15;
  /// Mean words per tweet (tweets are short: the paper's motivation
  /// for not using text-distance diversity).
  double mean_words = 9.0;
  /// Probability a tweet is a near-duplicate of a recent tweet.
  double duplicate_prob = 0.08;
  /// Number of burst events (topic-specific rate spikes).
  int num_bursts = 12;
  /// Mean burst intensity: extra tweets per burst.
  double burst_size = 400.0;
  /// Burst decay time constant, seconds.
  double burst_tau = 900.0;
  /// Per-topic sentiment bias amplitude in [0,1].
  double sentiment_bias = 0.5;
  uint64_t seed = 42;
};

/// Generates the stream sorted by time.
Result<std::vector<Tweet>> GenerateTweetStream(const TweetGenConfig& config);

}  // namespace mqd

#endif  // MQD_GEN_TWEET_GEN_H_
