#ifndef MQD_GEN_NEWS_GEN_H_
#define MQD_GEN_NEWS_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace mqd {

/// A built-in broad news category with its characteristic vocabulary
/// (the generator's ground truth; the paper's analogue is the manual
/// grouping of LDA topics into 10 broad topics like politics or
/// sports).
struct BroadTopicSpec {
  std::string name;
  std::vector<std::string> keywords;
};

/// The 10 built-in broad topics (politics, sports, finance, tech,
/// health, entertainment, science, world, weather, crime), ~40
/// keywords each.
const std::vector<BroadTopicSpec>& BuiltinBroadTopics();

/// Shared non-topical filler vocabulary.
const std::vector<std::string>& BackgroundWords();

/// A synthetic news article: space-joined words drawn from 1-2 broad
/// topics plus background filler, Zipf-weighted within each
/// vocabulary.
struct NewsArticle {
  std::string text;
  /// Ground-truth dominant broad topic (index into
  /// BuiltinBroadTopics()).
  int broad_topic;
};

struct NewsGenConfig {
  size_t num_articles = 2000;
  /// Mean words per article (Poisson).
  double mean_words = 80.0;
  /// Probability an article mixes in a secondary topic.
  double mixture_prob = 0.25;
  /// Fraction of words drawn from the background vocabulary.
  double background_fraction = 0.35;
  /// Zipf exponent within each vocabulary.
  double word_skew = 0.8;
  uint64_t seed = 42;
};

Result<std::vector<NewsArticle>> GenerateNewsCorpus(
    const NewsGenConfig& config);

}  // namespace mqd

#endif  // MQD_GEN_NEWS_GEN_H_
